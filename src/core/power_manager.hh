/**
 * @file
 * The POLCA power manager (Section 6.3, Figure 12).
 *
 * Listens to 2 s row telemetry and drives per-server OOB control
 * channels.  Escalates threshold rules one at a time, releases them
 * with hysteresis, falls back to the power brake at the provisioned
 * limit, and re-issues commands whose silent failure it detects by
 * comparing desired against applied state (the guardrails Section
 * 3.3 calls for).
 *
 * The manager is also a fault target: it implements
 * faults::ControllerHooks, so a FaultPlan can crash it (process
 * memory wiped, watchdog dead) and restart it warm (rehydrating
 * from the snapshot it persisted at crash time) or cold (blind —
 * straight into fail-safe until telemetry proves the world out).
 * Degraded-visibility state is tracked explicitly as a ControlMode
 * ladder (Full -> StalePartial -> Blind) with recovery-SLO
 * accounting: MTTR, time-to-fail-safe, and caps-held-stale time.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "core/policy.hh"
#include "faults/controller_hooks.hh"
#include "obs/observability.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "telemetry/row_manager.hh"
#include "telemetry/smbpbi.hh"

namespace polca::core {

/**
 * How much of the world the manager can currently see.  The ladder
 * only descends on evidence (stale telemetry, a crash) and only
 * returns to Full on a delivered reading.
 */
enum class ControlMode
{
    Full,         ///< fresh telemetry, acting normally
    StalePartial, ///< telemetry stale past staleWarnTimeout, or
                  ///< freshly restarted and re-asserting old state
    Blind,        ///< fail-safe or crashed: no trustworthy inputs
};

const char *toString(ControlMode mode);

/** Latency/reliability parameters of the manager's control paths. */
struct ManagerOptions
{
    /** OOB capping command latency (Table 2: up to 40 s). */
    sim::Tick oobCommandLatency;

    /** Power brake actuation latency (Table 2: 5 s). */
    sim::Tick brakeLatency;

    /** Minimum time the brake is held before release is considered
     *  (limits brake-release thrash under sustained overload). */
    sim::Tick minBrakeHold;

    /** Probability an OOB capping command fails silently. */
    double smbpbiFailureProbability;

    /** Extra wait past the command latency before state
     *  verification triggers a re-issue. */
    sim::Tick verifySlack;

    /**
     * Cap/uncap decisions use a trailing mean of the readings in
     * this window; raw 2 s readings swing several percent from
     * prompt-phase multiplexing and would thrash the thresholds.
     * The brake decision always uses the raw reading (safety).
     */
    sim::Tick decisionSmoothingWindow;

    /** Minimum time a rule stays active before release is
     *  considered (uncapping is conservative; capping is not). */
    sim::Tick minRuleDwell;

    /**
     * Safety watchdog: a self-scheduled heartbeat, independent of
     * telemetry callbacks, that notices when readings stop arriving.
     * Without it a telemetry blackout freezes the manager in
     * whatever state it was in — the brake can never engage while
     * row power spikes unboundedly.
     */
    bool watchdogEnabled;

    /** Heartbeat cadence of the watchdog check. */
    sim::Tick watchdogInterval;

    /** Telemetry staleness that triggers fail-safe: no reading for
     *  this long after start().  The default (15 missed 2 s
     *  readings) is far outside what the benign i.i.d. dropout of
     *  Section 3.3 produces, so only real blackouts trip it. */
    sim::Tick watchdogTimeout;

    /** Telemetry staleness at which the manager degrades to
     *  StalePartial mode (an early-warning rung well before the
     *  fail-safe timeout). */
    sim::Tick staleWarnTimeout;

    /** In fail-safe, also engage the power brake (the brake line is
     *  a dedicated hardware path that survives BMC outages).  The
     *  policy's powerBrakeEnabled still gates this. */
    bool failSafeEngageBrake;

    /** Per-channel circuit breaker: consecutive re-issues on one
     *  OOB channel before it is flagged as needing attention. */
    std::uint32_t channelFlagThreshold;

    ManagerOptions()
        : oobCommandLatency(sim::secondsToTicks(40)),
          brakeLatency(sim::secondsToTicks(5)),
          minBrakeHold(sim::secondsToTicks(45)),
          smbpbiFailureProbability(0.0),
          verifySlack(sim::secondsToTicks(4)),
          decisionSmoothingWindow(sim::secondsToTicks(30)),
          minRuleDwell(sim::secondsToTicks(60)),
          watchdogEnabled(true),
          watchdogInterval(sim::secondsToTicks(2)),
          watchdogTimeout(sim::secondsToTicks(30)),
          staleWarnTimeout(sim::secondsToTicks(10)),
          failSafeEngageBrake(true),
          channelFlagThreshold(3)
    {}
};

/**
 * Threshold-policy power manager over one row.
 */
class PowerManager : public faults::ControllerHooks
{
  public:
    /**
     * Durable controller state, persisted on every crash.  This is
     * what a warm-restarted (or cold-standby) controller rehydrates
     * from so it resumes from last-known caps instead of blind.
     * Deliberately small: only the externally-visible control
     * posture, not the smoothing window or per-channel history.
     */
    struct Snapshot
    {
        std::vector<bool> ruleActive;
        std::vector<sim::Tick> ruleActivatedAt;
        double lowCommandedMhz = 0.0;
        double highCommandedMhz = 0.0;
        bool brakeEngaged = false;
        sim::Tick brakeEngagedAt = 0;
    };

    PowerManager(sim::Simulation &sim, telemetry::RowManager &telemetry,
                 double provisionedWatts, PolicyConfig policy,
                 sim::Rng rng, ManagerOptions options = ManagerOptions());

    /** Register a control target in a priority pool (one per
     *  server); call before start(). */
    void addTarget(workload::Priority pool,
                   telemetry::ClockControllable *target);

    /**
     * Register decision counters, the reading-gap histogram (how
     * stale the data driving each decision was), and rule /
     * brake / fail-safe trace events with @p obs; also attaches
     * every OOB channel (present and future — order relative to
     * addTarget does not matter).  Low-pool channels trace on
     * tracks 0..n, high-pool channels on tracks 100+.
     */
    void attachObservability(obs::Observability *obs);

    /** Subscribe to telemetry, arm the watchdog, begin managing. */
    void start();

    /** OOB command channels of a pool (fault injection / tests). */
    std::vector<telemetry::SmbpbiController *>
    channels(workload::Priority pool);

    const PolicyConfig &policy() const { return policy_; }
    double provisionedWatts() const { return provisionedWatts_; }

    /** @name Statistics */
    /** @{ */
    /** Reactive brake engagements (measured power hit the brake
     *  threshold).  Precautionary fail-safe engagements are counted
     *  under failSafeEntries() instead, so this stays comparable to
     *  the paper's brake-event metric. */
    std::uint64_t powerBrakeEvents() const { return brakeEvents_; }
    std::uint64_t capCommands() const { return capCommands_; }
    std::uint64_t uncapCommands() const { return uncapCommands_; }
    std::uint64_t reissuedCommands() const { return reissued_; }

    /** Max/mean row utilization seen by telemetry. */
    double maxUtilization() const { return utilization_.max(); }
    double meanUtilization() const { return utilization_.mean(); }
    const sim::Accumulator &utilizationStats() const
    {
        return utilization_;
    }

    /** Total time the pool has spent under a non-zero desired lock. */
    sim::Tick lockedTicks(workload::Priority pool) const;

    /** Desired lock (MHz, 0 = none) currently commanded to a pool. */
    double desiredLockMhz(workload::Priority pool) const;

    /** @return true while the power brake is engaged. */
    bool brakeEngaged() const { return brakeEngaged_; }

    /** @name Watchdog / fail-safe */
    /** @{ */
    /** @return true while the manager is flying blind in fail-safe. */
    bool failSafeActive() const { return failSafe_; }

    /** Times the watchdog declared telemetry stale. */
    std::uint64_t failSafeEntries() const { return failSafeEntries_; }

    /** Total time spent in fail-safe. */
    sim::Tick failSafeTicks() const;

    /** OOB channels flagged by the re-issue circuit breaker. */
    std::uint64_t flaggedChannels() const { return flaggedChannels_; }

    /** @return true if channel @p index of @p pool is flagged. */
    bool channelFlagged(workload::Priority pool,
                        std::size_t index) const;
    /** @} */

    /** @name Controller crash / restart (faults::ControllerHooks) */
    /** @{ */
    /** Crash the controller process: snapshot durable state, wipe
     *  process memory, kill the watchdog, go Blind.  In-flight OOB
     *  commands and the hardware brake line survive. */
    void controllerCrash() override;

    /** Bring a replacement controller up.  Warm restarts rehydrate
     *  from the crash-time snapshot and re-assert it down every
     *  channel; cold restarts have no snapshot and enter fail-safe
     *  until telemetry proves the world out. */
    void controllerRestart(bool coldRestart) override;

    /** A crashed server came back: its applied OOB state was wiped
     *  by the reboot, so reset the channel's re-issue/flag history
     *  (it described the dead server) and re-assert the pool's lock
     *  and brake on that channel. */
    void serverRestarted(telemetry::ClockControllable *target) override;

    /** Capture the durable state a restart would rehydrate from. */
    Snapshot snapshot() const;

    /** @return true while the controller process is down. */
    bool crashed() const { return crashed_; }

    /** Start of the current controller incarnation (start() or the
     *  latest restart). */
    sim::Tick aliveSince() const { return aliveSince_; }

    /** Current visibility rung. */
    ControlMode mode() const { return mode_; }

    /** Mode-ladder transitions (each one is also a trace event). */
    std::uint64_t modeTransitions() const { return modeTransitions_; }

    /** Controller crash events suffered. */
    std::uint64_t controllerCrashes() const
    {
        return controllerCrashes_;
    }

    /** Recoveries completed (first delivered reading after a
     *  restart). */
    std::uint64_t controllerRecoveries() const
    {
        return controllerRecoveries_;
    }

    /** Total time the controller process was down. */
    sim::Tick controllerDownTicks() const
    {
        return controllerDownTicks_;
    }

    /** Total / worst-case crash-to-first-reading recovery time. */
    sim::Tick mttrTotalTicks() const { return mttrTotalTicks_; }
    sim::Tick mttrMaxTicks() const { return mttrMaxTicks_; }

    /** Worst staleness at the moment fail-safe engaged (how long
     *  the row ran unprotected before the watchdog acted). */
    sim::Tick timeToFailSafeMaxTicks() const
    {
        return timeToFailSafeMax_;
    }

    /** Time caps/brake were held while visibility was degraded
     *  (StalePartial or Blind), including controller downtime with
     *  caps frozen in place. */
    sim::Tick capsHeldStaleTicks() const
    {
        return capsHeldStaleTicks_;
    }

    /** Total time spent in StalePartial mode. */
    sim::Tick staleTicks() const;

    /** Total time the power brake has been engaged. */
    sim::Tick brakeTicks() const;
    /** @} */

  private:
    struct PoolState
    {
        std::vector<telemetry::ClockControllable *> targets;
        std::vector<std::unique_ptr<telemetry::SmbpbiController>>
            channels;
        std::vector<std::uint32_t> consecutiveReissues;
        std::vector<bool> flagged;
        double commandedMhz = 0.0;      ///< last commanded lock
        sim::Tick lastCommandTime = -1;
        sim::Tick lockedTicks = 0;
    };

    void onReading(sim::Tick now, double watts);
    void updateRuleStates(sim::Tick now, double utilization);
    void applyDesiredLocks(sim::Tick now);
    void verifyApplied(sim::Tick now, PoolState &pool);
    void engageBrake(sim::Tick now, bool countEvent);
    void releaseBrake();
    void watchdogCheck(sim::Tick now);
    void enterFailSafe(sim::Tick now);
    void exitFailSafe(sim::Tick now);
    void escalateAllRules(sim::Tick now);
    void setMode(sim::Tick now, ControlMode mode);
    bool capsHeld() const;
    PoolState &poolState(workload::Priority pool);
    const PoolState &poolState(workload::Priority pool) const;

    sim::Simulation &sim_;
    telemetry::RowManager &telemetry_;
    double provisionedWatts_;
    PolicyConfig policy_;
    sim::Rng rng_;
    ManagerOptions options_;

    PoolState lowPool_;
    PoolState highPool_;
    std::vector<bool> ruleActive_;
    std::vector<sim::Tick> ruleActivatedAt_;
    std::deque<std::pair<sim::Tick, double>> recentReadings_;
    double smoothedSum_ = 0.0;
    bool started_ = false;
    bool brakeEngaged_ = false;
    sim::Tick brakeEngagedAt_ = 0;
    sim::Tick lastReadingTime_ = 0;
    std::unique_ptr<sim::Simulation::PeriodicTask> watchdog_;
    bool failSafe_ = false;
    sim::Tick failSafeEnteredAt_ = 0;

    ControlMode mode_ = ControlMode::Full;
    sim::Tick modeSince_ = 0;
    bool crashed_ = false;
    sim::Tick crashedAt_ = 0;
    sim::Tick aliveSince_ = 0;
    bool recovering_ = false;
    Snapshot persistedSnapshot_;

    std::uint64_t brakeEvents_ = 0;
    std::uint64_t capCommands_ = 0;
    std::uint64_t uncapCommands_ = 0;
    std::uint64_t reissued_ = 0;
    std::uint64_t failSafeEntries_ = 0;
    sim::Tick failSafeTicks_ = 0;
    std::uint64_t flaggedChannels_ = 0;
    std::uint64_t modeTransitions_ = 0;
    std::uint64_t controllerCrashes_ = 0;
    std::uint64_t controllerRecoveries_ = 0;
    sim::Tick controllerDownTicks_ = 0;
    sim::Tick mttrTotalTicks_ = 0;
    sim::Tick mttrMaxTicks_ = 0;
    sim::Tick timeToFailSafeMax_ = 0;
    sim::Tick capsHeldStaleTicks_ = 0;
    sim::Tick staleTicks_ = 0;
    sim::Tick brakeTicks_ = 0;
    sim::Accumulator utilization_;

    obs::Observability *obs_ = nullptr;
    obs::TraceRecorder *trace_ = nullptr;
    obs::Counter *capStat_ = nullptr;
    obs::Counter *uncapStat_ = nullptr;
    obs::Counter *reissueStat_ = nullptr;
    obs::Counter *brakeStat_ = nullptr;
    obs::Counter *failSafeStat_ = nullptr;
    obs::Counter *flaggedStat_ = nullptr;
    obs::Counter *modeStat_ = nullptr;
    obs::Histogram *decisionGapStat_ = nullptr;
    obs::LogHistogram *brakeDwellStat_ = nullptr;
    obs::LogHistogram *mttrStat_ = nullptr;
};

} // namespace polca::core

