/**
 * @file
 * Snapshot/branch substrate for checkpointed sweep execution.
 *
 * A sweep whose points share an identical warmup prefix (same seed,
 * same workload, divergent only in policy/budget) wastes
 * points x warmup re-simulating the same trajectory.  The branch
 * layer simulates the shared prefix once, freezes the simulation at
 * the boundary, and forks every point from the in-memory snapshot.
 *
 * Callbacks cannot be serialized, so the snapshot does not copy the
 * event queue's pending events.  Instead every component follows the
 * *Snapshottable re-arm protocol*:
 *
 *  - `saveState()` returns a plain value object: the component's
 *    mutable counters/buffers plus, for each pending event it owns,
 *    the (when, seq) pair from the Handle (or the seq returned by
 *    EventQueue::post).
 *  - To branch, the caller builds a fresh world from the same
 *    configuration (structure and wiring are reproduced by
 *    construction), opens `EventQueue::beginRestore()` — which
 *    discards every build-time event and adopts the saved counters —
 *    then calls each component's `restoreState()`, which re-arms its
 *    pending callbacks via `rearmSchedule()/rearmPost()` with the
 *    *original* sequence numbers.  Because the queue breaks same-tick
 *    ties by seq and every seq is unique, the re-arm order is
 *    irrelevant: the branched trajectory is bit-identical to
 *    continuing the source run.
 *  - `EventQueue::endRestore(expectedLive)` closes the protocol.
 *
 * Holding mutable state in statics/globals breaks this silently (a
 * snapshot cannot see it); `polca_lint`'s snapshot-drift rule guards
 * the tree against that.
 */

#pragma once

#include "sim/event_queue.hh"

namespace polca::sim {

/**
 * The simulation-substrate half of a snapshot: the event queue's
 * counter state at the boundary.  Component states (model, cluster,
 * telemetry, obs) ride alongside in the experiment-level snapshot
 * (core::WarmupSnapshot), which owns one of these.
 *
 * The root Simulation Rng needs no entry here: Rng::fork()/
 * forkPath() are const (pure functions of the parent seed), so the
 * root stream never advances after construction and a rebuilt world
 * derives the identical child streams.  Component Rngs that *do*
 * advance during the prefix (dispatcher pick streams, telemetry
 * dropout streams) are value-copied inside their component's state.
 */
struct Snapshot
{
    EventQueueState queue;
};

} // namespace polca::sim
