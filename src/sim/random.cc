#include "sim/random.hh"

#include "core/contracts.hh"

namespace polca::sim {

std::size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        POLCA_CHECK(w >= 0.0, "negative weight ", w);
        total += w;
    }
    POLCA_CHECK(total > 0.0, "weights sum to zero");

    double draw = uniform() * total;
    double running = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        running += weights[i];
        if (draw < running)
            return i;
    }
    return weights.size() - 1;
}

} // namespace polca::sim
