/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * Every source of randomness in polcasim flows through an Rng that is
 * explicitly seeded, so a simulation with the same configuration and
 * seed reproduces bit-identical trajectories.  Child generators can be
 * forked with independent streams for per-component randomness.
 */

#pragma once

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace polca::sim {

/**
 * Seeded pseudo-random generator with the distributions the models
 * need.  Thin wrapper over std::mt19937_64.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
        : engine_(seed), seed_(seed)
    {}

    /** Seed used at construction (or last reseed). */
    std::uint64_t seed() const { return seed_; }

    /** Reset the stream to @p seed. */
    void
    reseed(std::uint64_t seed)
    {
        seed_ = seed;
        engine_.seed(seed);
    }

    /**
     * Fork an independent child stream.  The child seed mixes this
     * stream's seed with @p salt so that components get stable,
     * uncorrelated streams regardless of draw order elsewhere.
     */
    Rng
    fork(std::uint64_t salt) const
    {
        std::uint64_t mixed = seed_ ^ (salt * 0xBF58476D1CE4E5B9ull + 1);
        mixed ^= mixed >> 31;
        mixed *= 0x94D049BB133111EBull;
        mixed ^= mixed >> 29;
        return Rng(mixed);
    }

    /**
     * Fork an independent child stream keyed by a name (e.g. a power
     * domain's name).  The salt is the FNV-1a 64-bit hash of
     * @p segment, mixed with this stream's seed exactly like fork(),
     * so the stream a named child receives depends only on
     * (parent seed, name): adding or removing sibling components
     * never reshuffles it, unlike sequential draws or index-based
     * salts.  Nested forkPath() calls key a stream by its full path.
     */
    Rng
    forkPath(std::string_view segment) const
    {
        std::uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a offset
        for (char c : segment) {
            hash ^= static_cast<std::uint64_t>(
                static_cast<unsigned char>(c));
            hash *= 0x100000001b3ull;  // FNV-1a prime
        }
        return fork(hash);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /** Exponential with the given rate (mean 1/rate). */
    double
    exponential(double rate)
    {
        return std::exponential_distribution<double>(rate)(engine_);
    }

    /** Normal with mean/stddev. */
    double
    normal(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /** Log-normal parameterized by the underlying normal. */
    double
    lognormal(double mu, double sigma)
    {
        return std::lognormal_distribution<double>(mu, sigma)(engine_);
    }

    /** Bernoulli trial. */
    bool
    bernoulli(double p)
    {
        return std::bernoulli_distribution(p)(engine_);
    }

    /**
     * Sample an index from unnormalized non-negative weights.
     * Weights summing to zero are a caller error.
     */
    std::size_t weightedIndex(const std::vector<double> &weights);

    /** Access the raw engine (for std distributions). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
    std::uint64_t seed_;
};

} // namespace polca::sim

