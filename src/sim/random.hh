/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * Every source of randomness in polcasim flows through an Rng that is
 * explicitly seeded, so a simulation with the same configuration and
 * seed reproduces bit-identical trajectories.  Child generators can be
 * forked with independent streams for per-component randomness.
 */

#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace polca::sim {

/**
 * Seeded pseudo-random generator with the distributions the models
 * need.  Thin wrapper over std::mt19937_64.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
        : engine_(seed), seed_(seed)
    {}

    /** Seed used at construction (or last reseed). */
    std::uint64_t seed() const { return seed_; }

    /** Reset the stream to @p seed. */
    void
    reseed(std::uint64_t seed)
    {
        seed_ = seed;
        engine_.seed(seed);
    }

    /**
     * Fork an independent child stream.  The child seed mixes this
     * stream's seed with @p salt so that components get stable,
     * uncorrelated streams regardless of draw order elsewhere.
     */
    Rng
    fork(std::uint64_t salt) const
    {
        std::uint64_t mixed = seed_ ^ (salt * 0xBF58476D1CE4E5B9ull + 1);
        mixed ^= mixed >> 31;
        mixed *= 0x94D049BB133111EBull;
        mixed ^= mixed >> 29;
        return Rng(mixed);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /** Exponential with the given rate (mean 1/rate). */
    double
    exponential(double rate)
    {
        return std::exponential_distribution<double>(rate)(engine_);
    }

    /** Normal with mean/stddev. */
    double
    normal(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /** Log-normal parameterized by the underlying normal. */
    double
    lognormal(double mu, double sigma)
    {
        return std::lognormal_distribution<double>(mu, sigma)(engine_);
    }

    /** Bernoulli trial. */
    bool
    bernoulli(double p)
    {
        return std::bernoulli_distribution(p)(engine_);
    }

    /**
     * Sample an index from unnormalized non-negative weights.
     * Weights summing to zero are a caller error.
     */
    std::size_t weightedIndex(const std::vector<double> &weights);

    /** Access the raw engine (for std distributions). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
    std::uint64_t seed_;
};

} // namespace polca::sim

