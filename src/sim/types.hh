/**
 * @file
 * Fundamental simulation types and unit helpers.
 *
 * All simulated time is kept as an integer number of microseconds
 * (`Tick`).  Integer time keeps event ordering exact and reproducible;
 * helpers convert to and from floating-point seconds at the edges.
 */

#pragma once

#include <cstdint>

namespace polca::sim {

/** Simulated time in microseconds. */
using Tick = std::int64_t;

/** Ticks per second / millisecond. */
constexpr Tick ticksPerSecond = 1'000'000;
constexpr Tick ticksPerMs = 1'000;

/** Largest representable time; used as "never". */
constexpr Tick maxTick = INT64_MAX;

/** Convert floating-point seconds to ticks (rounded to nearest). */
constexpr Tick
secondsToTicks(double seconds)
{
    return static_cast<Tick>(seconds * ticksPerSecond + 0.5);
}

/** Convert milliseconds to ticks. */
constexpr Tick
msToTicks(double ms)
{
    return static_cast<Tick>(ms * ticksPerMs + 0.5);
}

/** Convert ticks to floating-point seconds. */
constexpr double
ticksToSeconds(Tick ticks)
{
    return static_cast<double>(ticks) / ticksPerSecond;
}

/** Convert ticks to floating-point milliseconds. */
constexpr double
ticksToMs(Tick ticks)
{
    return static_cast<double>(ticks) / ticksPerMs;
}

} // namespace polca::sim

