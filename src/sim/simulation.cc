#include "sim/simulation.hh"

#include <algorithm>
#include <mutex>

#include "core/contracts.hh"
#include "sim/logging.hh"

namespace polca::sim {

namespace {

/**
 * Per-thread stack of live simulations (nesting happens when an
 * experiment builds a sub-simulation).  The calling thread's
 * innermost live one provides its log-time prefix, so simulations on
 * different threads each stamp their own thread's log lines.
 */
std::vector<Simulation *> &
activeSimulations()
{
    thread_local std::vector<Simulation *> active;
    return active;
}

/**
 * The log time source itself is process-global, so it is installed
 * when the first simulation on *any* thread appears and removed when
 * the last one (across all threads) dies — counted under a mutex.
 * The installed callback reads the calling thread's stack.
 */
std::mutex &
timeSourceMutex()
{
    static std::mutex mutex;
    return mutex;
}

int liveSimulationCount = 0;  // guarded by timeSourceMutex()

} // namespace

Simulation::Simulation(std::uint64_t seed)
    : rng_(seed)
{
    activeSimulations().push_back(this);
    std::lock_guard<std::mutex> lock(timeSourceMutex());
    if (++liveSimulationCount == 1) {
        setLogTimeSource([] {
            auto &sims = activeSimulations();
            return sims.empty() ? Tick{0} : sims.back()->now();
        });
    }
}

Simulation::~Simulation()
{
    auto &active = activeSimulations();
    active.erase(std::find(active.begin(), active.end(), this));
    std::lock_guard<std::mutex> lock(timeSourceMutex());
    if (--liveSimulationCount == 0)
        setLogTimeSource(nullptr);
}

Simulation::PeriodicTask::PeriodicTask(Simulation &sim, Tick period,
                                       std::function<void(Tick)> callback)
    : sim_(sim), period_(period), callback_(std::move(callback))
{
    POLCA_CHECK(period_ > 0, "non-positive period ", period_);
}

void
Simulation::PeriodicTask::fire()
{
    if (!running_)
        return;
    Tick fired = sim_.now();
    // Re-arm before invoking so the callback may stop() us.
    arm();
    callback_(fired);
}

void
Simulation::PeriodicTask::arm()
{
    pending_ = sim_.queue().scheduleAfter(period_,
                                          [this] { fire(); });
}

Simulation::PeriodicTask::State
Simulation::PeriodicTask::saveState() const
{
    State state;
    state.running = running_ && pending_.pending();
    if (state.running) {
        state.when = pending_.when();
        state.seq = pending_.seq();
    }
    return state;
}

void
Simulation::PeriodicTask::restoreState(const State &state)
{
    if (!state.running) {
        running_ = false;
        return;
    }
    running_ = true;
    pending_ = sim_.queue().rearmSchedule(state.when, state.seq,
                                          [this] { fire(); });
}

void
Simulation::PeriodicTask::stop()
{
    if (!running_)
        return;
    running_ = false;
    sim_.queue().cancel(pending_);
}

std::unique_ptr<Simulation::PeriodicTask>
Simulation::every(Tick period, std::function<void(Tick)> callback,
                  Tick phase)
{
    // PeriodicTask's ctor is private, so make_unique cannot reach it;
    // the unique_ptr takes ownership on the same line.
    auto task = std::unique_ptr<PeriodicTask>(
        new PeriodicTask(*this, period, std::move(callback)));  // polca-lint: allow(raw-new-delete)
    PeriodicTask *raw = task.get();
    Tick first = phase >= 0 ? phase : period;
    task->pending_ =
        queue_.scheduleAfter(first, [raw] { raw->fire(); });
    return task;
}

} // namespace polca::sim
