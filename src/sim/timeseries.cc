#include "sim/timeseries.hh"

#include <algorithm>
#include <limits>

#include "core/contracts.hh"

namespace polca::sim {

void
TimeSeries::add(Tick time, double value)
{
    POLCA_CHECK(points_.empty() || time >= points_.back().time,
                "time ", time, " precedes last sample ",
                points_.empty() ? 0 : points_.back().time);
    points_.push_back({time, value});
}

Tick
TimeSeries::startTime() const
{
    POLCA_CHECK(!points_.empty(), "startTime on empty series");
    return points_.front().time;
}

Tick
TimeSeries::endTime() const
{
    POLCA_CHECK(!points_.empty(), "endTime on empty series");
    return points_.back().time;
}

double
TimeSeries::valueAt(Tick time) const
{
    POLCA_CHECK(!points_.empty(), "valueAt on empty series");
    if (time < points_.front().time)
        return points_.front().value;

    // Last point with point.time <= time.
    auto it = std::upper_bound(
        points_.begin(), points_.end(), time,
        [](Tick t, const Point &p) { return t < p.time; });
    return std::prev(it)->value;
}

double
TimeSeries::maxValue() const
{
    POLCA_CHECK(!points_.empty(), "maxValue on empty series");
    double best = -std::numeric_limits<double>::infinity();
    for (const Point &p : points_)
        best = std::max(best, p.value);
    return best;
}

double
TimeSeries::minValue() const
{
    POLCA_CHECK(!points_.empty(), "minValue on empty series");
    double best = std::numeric_limits<double>::infinity();
    for (const Point &p : points_)
        best = std::min(best, p.value);
    return best;
}

double
TimeSeries::meanValue() const
{
    POLCA_CHECK(!points_.empty(), "meanValue on empty series");
    double sum = 0.0;
    for (const Point &p : points_)
        sum += p.value;
    return sum / static_cast<double>(points_.size());
}

double
TimeSeries::timeWeightedMean() const
{
    POLCA_CHECK(!points_.empty(), "timeWeightedMean on empty series");
    if (points_.size() == 1)
        return points_.front().value;

    double integral = 0.0;
    for (std::size_t i = 0; i + 1 < points_.size(); ++i) {
        double dt = static_cast<double>(points_[i + 1].time -
                                        points_[i].time);
        integral += points_[i].value * dt;
    }
    double span = static_cast<double>(points_.back().time -
                                      points_.front().time);
    if (span <= 0.0)
        return points_.back().value;
    return integral / span;
}

TimeSeries
TimeSeries::resampled(Tick dt) const
{
    POLCA_CHECK(dt > 0, "resampled: non-positive period ", dt);
    TimeSeries out;
    if (points_.empty())
        return out;

    std::size_t src = 0;
    for (Tick t = points_.front().time; t <= points_.back().time; t += dt) {
        while (src + 1 < points_.size() && points_[src + 1].time <= t)
            ++src;
        out.add(t, points_[src].value);
    }
    return out;
}

TimeSeries
TimeSeries::movingAverage(Tick window) const
{
    POLCA_CHECK(window > 0, "movingAverage: non-positive window ",
                window);
    TimeSeries out;
    out.reserve(points_.size());

    double sum = 0.0;
    std::size_t head = 0;  // first index inside the window
    for (std::size_t i = 0; i < points_.size(); ++i) {
        sum += points_[i].value;
        while (points_[i].time - points_[head].time >= window) {
            sum -= points_[head].value;
            ++head;
        }
        out.add(points_[i].time,
                sum / static_cast<double>(i - head + 1));
    }
    return out;
}

double
TimeSeries::maxRiseWithin(Tick window) const
{
    POLCA_CHECK(window > 0, "maxRiseWithin: non-positive window ",
                window);
    if (points_.size() < 2)
        return 0.0;

    // Monotonic sliding window of candidate minima within the
    // trailing window; for each sample j, the best rise ending at j
    // is v_j - min(v_i : t_j - t_i <= window, i <= j).  The window
    // is a flat vector with a head cursor (pop-front = ++head)
    // holding point copies, so the single pass touches contiguous
    // memory and never allocates per element — this replaced a
    // std::deque of indices that cost an indirection per compare.
    std::vector<Point> minima;
    minima.reserve(std::min<std::size_t>(points_.size(), 1024));
    std::size_t head = 0;
    double best = 0.0;
    for (const Point &p : points_) {
        while (head < minima.size() &&
               p.time - minima[head].time > window) {
            ++head;
        }
        if (head < minima.size())
            best = std::max(best, p.value - minima[head].value);
        while (minima.size() > head &&
               minima.back().value >= p.value) {
            minima.pop_back();
        }
        minima.push_back(p);
    }
    return best;
}

TimeSeries
TimeSeries::scaled(double factor) const
{
    TimeSeries out;
    out.reserve(points_.size());
    for (const Point &p : points_)
        out.add(p.time, p.value * factor);
    return out;
}

TimeSeries
sumOnGrid(const std::vector<const TimeSeries *> &series, Tick dt)
{
    POLCA_CHECK(dt > 0, "sumOnGrid: non-positive period ", dt);

    Tick start = maxTick;
    Tick end = 0;
    bool any = false;
    for (const TimeSeries *s : series) {
        if (!s || s->empty())
            continue;
        any = true;
        start = std::min(start, s->startTime());
        end = std::max(end, s->endTime());
    }

    TimeSeries out;
    if (!any)
        return out;
    out.reserve(static_cast<std::size_t>((end - start) / dt) + 1);

    // Single merged sweep: the grid only moves forward, so one
    // monotone cursor per series replaces a binary search per
    // (grid point, series) pair — each cursor advances at most
    // size() times over the whole sweep, O(samples + grid x series)
    // instead of O(grid x series x log samples).
    std::vector<const TimeSeries *> live;
    live.reserve(series.size());
    for (const TimeSeries *s : series) {
        if (s && !s->empty())
            live.push_back(s);
    }
    std::vector<std::size_t> cursor(live.size(), 0);
    for (Tick t = start; t <= end; t += dt) {
        double sum = 0.0;
        for (std::size_t i = 0; i < live.size(); ++i) {
            const std::vector<TimeSeries::Point> &points =
                live[i]->points();
            std::size_t &c = cursor[i];
            while (c + 1 < points.size() && points[c + 1].time <= t)
                ++c;
            // Before a series' first sample this holds its first
            // value — the same step extension valueAt() applies.
            sum += points[c].value;
        }
        out.add(t, sum);
    }
    return out;
}

} // namespace polca::sim
