#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

#include "core/contracts.hh"
#include "sim/logging.hh"

namespace polca::sim {

std::uint32_t
EventQueue::allocSlot()
{
    if (freeHead_ != kNoSlot) {
        std::uint32_t slot = freeHead_;
        POLCA_DCHECK(slot < slab_.size(),
                     "free-list head ", slot, " outside slab of ",
                     slab_.size());
        POLCA_DCHECK(!slab_[slot].callback,
                     "free-listed slot ", slot,
                     " still holds a callback");
        freeHead_ = slab_[slot].nextFree;
        return slot;
    }
    POLCA_CHECK(slab_.size() < kNoSlot,
                "slab exhausted (", slab_.size(), " slots)");
    slab_.emplace_back();
    return static_cast<std::uint32_t>(slab_.size() - 1);
}

void
EventQueue::freeSlot(std::uint32_t slot)
{
    Slot &s = slab_[slot];
    s.callback = nullptr;
    s.control.reset();
    s.nextFree = freeHead_;
    freeHead_ = slot;
}

std::uint32_t
EventQueue::enqueue(Tick when, Callback &callback,
                    const std::string &name)
{
    POLCA_CHECK(when >= now_,
                "scheduling event '", name, "' at t=", when,
                " which is in the past (now=", now_, ")");
    POLCA_CHECK(static_cast<bool>(callback),
                "scheduling empty callback '", name, "'");

    std::uint32_t slot = allocSlot();
    Slot &s = slab_[slot];
    s.callback = std::move(callback);
    s.seq = nextSeq_++;
    if (namesEnabled_ && !name.empty())
        names_.emplace(s.seq, name);

    heap_.push_back({when, s.seq, slot});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++liveEvents_;
    highWater_ = std::max(highWater_, liveEvents_);
    return slot;
}

EventQueue::Handle
EventQueue::schedule(Tick when, Callback callback, std::string name)
{
    std::uint32_t slot = enqueue(when, callback, name);
    auto control = std::make_shared<Handle::Control>();
    control->slot = slot;
    slab_[slot].control = control;
    return Handle(std::move(control));
}

EventQueue::Handle
EventQueue::scheduleAfter(Tick delay, Callback callback, std::string name)
{
    POLCA_CHECK(delay >= 0, "negative delay ", delay);
    return schedule(now_ + delay, std::move(callback), std::move(name));
}

void
EventQueue::post(Tick when, Callback callback, std::string name)
{
    enqueue(when, callback, name);
}

void
EventQueue::postAfter(Tick delay, Callback callback, std::string name)
{
    POLCA_CHECK(delay >= 0, "negative delay ", delay);
    post(now_ + delay, std::move(callback), std::move(name));
}

void
EventQueue::cancel(Handle &handle)
{
    if (!handle.control_ || handle.control_->done)
        return;
    handle.control_->done = true;
    // Release the callback's resources now, but keep the slot
    // occupied until its heap entry surfaces (see Slot).
    POLCA_ASSERT(handle.control_->slot < slab_.size(),
                 "live handle points at slot ", handle.control_->slot,
                 " outside slab of ", slab_.size());
    POLCA_ASSERT(liveEvents_ > 0,
                 "cancelling a live handle with no live events");
    Slot &s = slab_[handle.control_->slot];
    s.callback = nullptr;
    s.control.reset();
    if (!names_.empty())
        names_.erase(s.seq);
    --liveEvents_;
}

void
EventQueue::reserve(std::size_t n)
{
    heap_.reserve(n);
    slab_.reserve(n);
}

std::vector<std::string>
EventQueue::pendingEventNames() const
{
    std::vector<HeapEntry> live;
    live.reserve(liveEvents_);
    for (const HeapEntry &entry : heap_) {
        if (slab_[entry.slot].callback)
            live.push_back(entry);
    }
    std::sort(live.begin(), live.end(),
              [](const HeapEntry &a, const HeapEntry &b) {
                  return Later{}(b, a);
              });
    std::vector<std::string> names;
    names.reserve(live.size());
    for (const HeapEntry &entry : live) {
        auto it = names_.find(entry.seq);
        names.push_back(it == names_.end() ? "(unnamed)"
                                           : it->second);
    }
    return names;
}

void
EventQueue::skipDead()
{
    while (!heap_.empty() && !slab_[heap_.front().slot].callback) {
        std::uint32_t slot = heap_.front().slot;
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        heap_.pop_back();
        freeSlot(slot);
    }
}

bool
EventQueue::runOne()
{
    skipDead();
    if (heap_.empty())
        return false;

    HeapEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();

    // Heap order is the determinism contract: the popped entry must
    // never precede the current time, and skipDead() must have left a
    // live callback on top.
    POLCA_ASSERT(top.when >= now_,
                 "heap order violated: popped t=", top.when,
                 " behind now=", now_);
    POLCA_DCHECK(top.slot < slab_.size(),
                 "heap entry slot ", top.slot, " outside slab of ",
                 slab_.size());
    POLCA_ASSERT(liveEvents_ > 0,
                 "firing an event with liveEvents_ == 0");
    now_ = top.when;
    Slot &s = slab_[top.slot];
    POLCA_DCHECK(static_cast<bool>(s.callback),
                 "runOne popped a dead slot after skipDead");
    if (s.control) {
        s.control->done = true;
        s.control.reset();
    }
    if (!names_.empty())
        names_.erase(top.seq);
    // Move the callback out before freeing the slot so re-entrant
    // scheduling can recycle it (and may grow the slab) safely.
    Callback callback = std::move(s.callback);
    s.callback = nullptr;
    freeSlot(top.slot);
    --liveEvents_;
    ++numProcessed_;
    callback();
    return true;
}

std::uint64_t
EventQueue::runUntil(Tick end)
{
    std::uint64_t processed = 0;
    for (;;) {
        skipDead();
        if (heap_.empty() || heap_.front().when > end)
            break;
        runOne();
        ++processed;
    }
    if (now_ < end)
        now_ = end;
    return processed;
}

std::uint64_t
EventQueue::runAll()
{
    std::uint64_t processed = 0;
    while (runOne())
        ++processed;
    return processed;
}

} // namespace polca::sim
