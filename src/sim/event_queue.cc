#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

#include "core/contracts.hh"
#include "sim/logging.hh"

namespace polca::sim {

std::uint32_t
EventQueue::allocSlot()
{
    if (freeHead_ != kNoSlot) {
        std::uint32_t slot = freeHead_;
        POLCA_DCHECK(slot < slab_.size(),
                     "free-list head ", slot, " outside slab of ",
                     slab_.size());
        POLCA_DCHECK(!slab_[slot].callback,
                     "free-listed slot ", slot,
                     " still holds a callback");
        freeHead_ = slab_[slot].nextFree;
        return slot;
    }
    POLCA_CHECK(slab_.size() < kNoSlot,
                "slab exhausted (", slab_.size(), " slots)");
    slab_.emplace_back();
    return static_cast<std::uint32_t>(slab_.size() - 1);
}

void
EventQueue::freeSlot(std::uint32_t slot)
{
    Slot &s = slab_[slot];
    s.callback = nullptr;
    s.control.reset();
    s.nextFree = freeHead_;
    freeHead_ = slot;
}

std::uint32_t
EventQueue::enqueue(Tick when, Callback &callback,
                    const std::string &name)
{
    POLCA_CHECK(when >= now_,
                "scheduling event '", name, "' at t=", when,
                " which is in the past (now=", now_, ")");
    POLCA_CHECK(static_cast<bool>(callback),
                "scheduling empty callback '", name, "'");
    POLCA_CHECK(!restoring_,
                "scheduling event '", name,
                "' while a snapshot restore is open (use "
                "rearmSchedule/rearmPost)");

    std::uint32_t slot = allocSlot();
    Slot &s = slab_[slot];
    s.callback = std::move(callback);
    s.seq = nextSeq_++;
    if (namesEnabled_ && !name.empty())
        names_.emplace(s.seq, name);

    heap_.push_back({when, s.seq, slot});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++liveEvents_;
    highWater_ = std::max(highWater_, liveEvents_);
    return slot;
}

EventQueue::Handle
EventQueue::schedule(Tick when, Callback callback, std::string name)
{
    std::uint32_t slot = enqueue(when, callback, name);
    auto control = std::make_shared<Handle::Control>();
    control->slot = slot;
    control->when = when;
    control->seq = slab_[slot].seq;
    slab_[slot].control = control;
    return Handle(std::move(control));
}

EventQueue::Handle
EventQueue::scheduleAfter(Tick delay, Callback callback, std::string name)
{
    POLCA_CHECK(delay >= 0, "negative delay ", delay);
    return schedule(now_ + delay, std::move(callback), std::move(name));
}

std::uint64_t
EventQueue::post(Tick when, Callback callback, std::string name)
{
    std::uint32_t slot = enqueue(when, callback, name);
    return slab_[slot].seq;
}

std::uint64_t
EventQueue::postAfter(Tick delay, Callback callback, std::string name)
{
    POLCA_CHECK(delay >= 0, "negative delay ", delay);
    return post(now_ + delay, std::move(callback), std::move(name));
}

void
EventQueue::cancel(Handle &handle)
{
    if (!handle.control_ || handle.control_->done)
        return;
    handle.control_->done = true;
    // Release the callback's resources now, but keep the slot
    // occupied until its heap entry surfaces (see Slot).
    POLCA_ASSERT(handle.control_->slot < slab_.size(),
                 "live handle points at slot ", handle.control_->slot,
                 " outside slab of ", slab_.size());
    POLCA_ASSERT(liveEvents_ > 0,
                 "cancelling a live handle with no live events");
    Slot &s = slab_[handle.control_->slot];
    s.callback = nullptr;
    s.control.reset();
    if (!names_.empty())
        names_.erase(s.seq);
    --liveEvents_;
}

void
EventQueue::reserve(std::size_t n)
{
    heap_.reserve(n);
    slab_.reserve(n);
}

std::vector<std::string>
EventQueue::pendingEventNames() const
{
    std::vector<HeapEntry> live;
    live.reserve(liveEvents_);
    for (const HeapEntry &entry : heap_) {
        if (slab_[entry.slot].callback)
            live.push_back(entry);
    }
    std::sort(live.begin(), live.end(),
              [](const HeapEntry &a, const HeapEntry &b) {
                  return Later{}(b, a);
              });
    std::vector<std::string> names;
    names.reserve(live.size());
    for (const HeapEntry &entry : live) {
        auto it = names_.find(entry.seq);
        names.push_back(it == names_.end() ? "(unnamed)"
                                           : it->second);
    }
    return names;
}

void
EventQueue::skipDead()
{
    while (!heap_.empty() && !slab_[heap_.front().slot].callback) {
        std::uint32_t slot = heap_.front().slot;
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        heap_.pop_back();
        freeSlot(slot);
    }
}

bool
EventQueue::runOne()
{
    skipDead();
    if (heap_.empty())
        return false;

    HeapEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();

    // Heap order is the determinism contract: the popped entry must
    // never precede the current time, and skipDead() must have left a
    // live callback on top.
    POLCA_ASSERT(top.when >= now_,
                 "heap order violated: popped t=", top.when,
                 " behind now=", now_);
    POLCA_DCHECK(top.slot < slab_.size(),
                 "heap entry slot ", top.slot, " outside slab of ",
                 slab_.size());
    POLCA_ASSERT(liveEvents_ > 0,
                 "firing an event with liveEvents_ == 0");
    now_ = top.when;
    Slot &s = slab_[top.slot];
    POLCA_DCHECK(static_cast<bool>(s.callback),
                 "runOne popped a dead slot after skipDead");
    if (s.control) {
        s.control->done = true;
        s.control.reset();
    }
    if (!names_.empty())
        names_.erase(top.seq);
    // Move the callback out before freeing the slot so re-entrant
    // scheduling can recycle it (and may grow the slab) safely.
    Callback callback = std::move(s.callback);
    s.callback = nullptr;
    freeSlot(top.slot);
    --liveEvents_;
    ++numProcessed_;
    callback();
    return true;
}

std::uint64_t
EventQueue::runUntil(Tick end)
{
    std::uint64_t processed = 0;
    for (;;) {
        skipDead();
        if (heap_.empty() || heap_.front().when > end)
            break;
        runOne();
        ++processed;
    }
    if (now_ < end)
        now_ = end;
    return processed;
}

std::uint64_t
EventQueue::runAll()
{
    std::uint64_t processed = 0;
    while (runOne())
        ++processed;
    return processed;
}

EventQueueState
EventQueue::captureState() const
{
    EventQueueState state;
    state.now = now_;
    state.nextSeq = nextSeq_;
    state.numProcessed = numProcessed_;
    state.liveEvents = liveEvents_;
    state.highWater = highWater_;
    return state;
}

void
EventQueue::beginRestore(const EventQueueState &state)
{
    POLCA_CHECK(!restoring_, "beginRestore with a restore open");
    POLCA_CHECK(state.now >= now_,
                "restoring to t=", state.now,
                " which is behind now=", now_);
    // Discard everything the freshly-built world scheduled; the
    // components re-arm their own pending events with the saved
    // (when, seq) pairs.
    for (const HeapEntry &entry : heap_) {
        Slot &s = slab_[entry.slot];
        if (s.control) {
            s.control->done = true;
            s.control.reset();
        }
    }
    heap_.clear();
    slab_.clear();
    freeHead_ = kNoSlot;
    names_.clear();
    now_ = state.now;
    nextSeq_ = state.nextSeq;
    numProcessed_ = state.numProcessed;
    liveEvents_ = 0;
    highWater_ = state.highWater;
    restoring_ = true;
}

std::uint32_t
EventQueue::rearm(Tick when, std::uint64_t seq, Callback &callback,
                  const std::string &name)
{
    POLCA_CHECK(restoring_,
                "rearm of '", name, "' outside a restore");
    POLCA_CHECK(seq < nextSeq_,
                "rearm of '", name, "' with seq ", seq,
                " the snapshotted run never allocated (nextSeq=",
                nextSeq_, ")");
    POLCA_CHECK(when >= now_,
                "rearm of '", name, "' at t=", when,
                " behind the restored now=", now_);
    POLCA_CHECK(static_cast<bool>(callback),
                "rearm of empty callback '", name, "'");

    std::uint32_t slot = allocSlot();
    Slot &s = slab_[slot];
    s.callback = std::move(callback);
    s.seq = seq;
    if (namesEnabled_ && !name.empty())
        names_.emplace(seq, name);
    heap_.push_back({when, seq, slot});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++liveEvents_;
    highWater_ = std::max(highWater_, liveEvents_);
    return slot;
}

EventQueue::Handle
EventQueue::rearmSchedule(Tick when, std::uint64_t seq,
                          Callback callback, std::string name)
{
    std::uint32_t slot = rearm(when, seq, callback, name);
    auto control = std::make_shared<Handle::Control>();
    control->slot = slot;
    control->when = when;
    control->seq = seq;
    slab_[slot].control = control;
    return Handle(std::move(control));
}

void
EventQueue::rearmPost(Tick when, std::uint64_t seq, Callback callback,
                      std::string name)
{
    rearm(when, seq, callback, name);
}

void
EventQueue::endRestore(std::size_t expectedLive)
{
    POLCA_CHECK(restoring_, "endRestore without beginRestore");
    POLCA_CHECK(liveEvents_ == expectedLive,
                "restore re-armed ", liveEvents_,
                " events, expected ", expectedLive);
    restoring_ = false;
}

} // namespace polca::sim
