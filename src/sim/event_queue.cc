#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace polca::sim {

EventQueue::Handle
EventQueue::schedule(Tick when, Callback callback, std::string name)
{
    if (when < now_) {
        panic("EventQueue: scheduling event '", name, "' at t=", when,
              " which is in the past (now=", now_, ")");
    }
    if (!callback)
        panic("EventQueue: scheduling empty callback '", name, "'");

    auto record = std::make_shared<Handle::Record>();
    record->when = when;
    record->seq = nextSeq_++;
    record->callback = std::move(callback);
    record->name = std::move(name);
    heap_.push(record);
    ++liveEvents_;
    highWater_ = std::max(highWater_, liveEvents_);
    return Handle(std::move(record));
}

EventQueue::Handle
EventQueue::scheduleAfter(Tick delay, Callback callback, std::string name)
{
    if (delay < 0)
        panic("EventQueue: negative delay ", delay);
    return schedule(now_ + delay, std::move(callback), std::move(name));
}

void
EventQueue::cancel(Handle &handle)
{
    if (!handle.record_ || handle.record_->done)
        return;
    handle.record_->done = true;
    handle.record_->callback = nullptr;
    --liveEvents_;
}

void
EventQueue::skipDead()
{
    while (!heap_.empty() && heap_.top()->done)
        heap_.pop();
}

bool
EventQueue::runOne()
{
    skipDead();
    if (heap_.empty())
        return false;

    RecordPtr record = heap_.top();
    heap_.pop();
    now_ = record->when;
    record->done = true;
    --liveEvents_;
    ++numProcessed_;

    // Move the callback out so re-entrant scheduling cannot touch it.
    Callback callback = std::move(record->callback);
    record->callback = nullptr;
    callback();
    return true;
}

std::uint64_t
EventQueue::runUntil(Tick end)
{
    std::uint64_t processed = 0;
    for (;;) {
        skipDead();
        if (heap_.empty() || heap_.top()->when > end)
            break;
        runOne();
        ++processed;
    }
    if (now_ < end)
        now_ = end;
    return processed;
}

std::uint64_t
EventQueue::runAll()
{
    std::uint64_t processed = 0;
    while (runOne())
        ++processed;
    return processed;
}

} // namespace polca::sim
