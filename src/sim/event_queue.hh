/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A minimal, deterministic event queue: events are callbacks scheduled
 * at absolute ticks.  Ties are broken by insertion order so that a run
 * with the same seed always produces the same trajectory.
 *
 * Two scheduling paths share one time-ordered heap:
 *
 *  - schedule()/scheduleAfter() return a Handle that can cancel the
 *    event; the handle's control block is the only per-event heap
 *    allocation.
 *  - post()/postAfter() are the fire-and-forget fast path: no handle,
 *    no control block, no allocation beyond the callback itself.
 *    Components that never cancel (arrival chains, fault triggers,
 *    one-shot command completions) should prefer it.
 *
 * Internally events live in a slab with a free list; the heap itself
 * orders small POD entries (when, seq, slot), so sift operations never
 * chase pointers.  The optional diagnostic name is kept out of the hot
 * record entirely: names are recorded in a side table only while
 * setNameTracing(true) is active.
 *
 * Scheduling in the past (when < now()) or with a negative delay is
 * rejected with a panic on BOTH paths — accepting such an event would
 * silently corrupt heap order and break determinism, so it is treated
 * as a simulator bug, never a recoverable condition.  Empty callbacks
 * are rejected the same way.
 *
 * Snapshot/branch support: captureState() freezes the queue's
 * counters (time, sequence allocator, processed/high-water marks)
 * into an EventQueueState.  Callbacks cannot be serialized, so a
 * snapshot is restored by *re-arming*: beginRestore() discards every
 * pending event and adopts the saved counters, then each component
 * re-registers its own pending callbacks via rearmSchedule()/
 * rearmPost() with the (when, seq) pair it saved — the original seq
 * is reused, so tie-breaking (and therefore the trajectory) is
 * bit-identical to the run the snapshot was taken from regardless of
 * re-arm order.  endRestore() closes the protocol and checks the
 * expected number of live events.  Normal scheduling panics while a
 * restore is open.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace polca::sim {

/**
 * Counter state of an EventQueue at a snapshot boundary.  Pending
 * callbacks are not part of this: they are re-armed by their owning
 * components (the Snapshottable protocol, see sim/snapshot.hh).
 */
struct EventQueueState
{
    Tick now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numProcessed = 0;
    std::size_t liveEvents = 0;
    std::size_t highWater = 0;
};

/**
 * Time-ordered queue of callbacks; the heart of the simulator.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /**
     * Opaque handle to a scheduled event.  Default-constructed handles
     * are inert; cancel() on an already-fired or cancelled handle is a
     * no-op.  Handles stay valid (inert) after their event fires and
     * after the queue itself is destroyed.
     */
    class Handle
    {
      public:
        Handle() = default;

        /** @return true if the event has neither fired nor been
         *  cancelled. */
        bool pending() const { return control_ && !control_->done; }

        /** Firing time of the pending event (snapshot support;
         *  meaningless unless pending()). */
        Tick when() const { return control_ ? control_->when : 0; }

        /** Sequence number of the pending event — the tie-break
         *  identity a re-arm must reuse (see EventQueueState). */
        std::uint64_t seq() const
        {
            return control_ ? control_->seq : 0;
        }

      private:
        friend class EventQueue;

        /** Shared between the queue's slab slot and any handles;
         *  severed (done = true) when the event fires or is
         *  cancelled, which also makes stale handles inert once the
         *  slot is recycled. */
        struct Control
        {
            std::uint32_t slot = 0;
            bool done = false;
            Tick when = 0;
            std::uint64_t seq = 0;
        };

        // Handles are the cold cancellation path, not the per-event
        // hot path (posts carry no control block at all).
        explicit Handle(std::shared_ptr<Control> control)  // polca-lint: allow(sim-shared-ptr)
            : control_(std::move(control))
        {}

        std::shared_ptr<Control> control_;  // polca-lint: allow(sim-shared-ptr)
    };

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule a cancellable callback at absolute tick @p when.
     *
     * @param when  Absolute time; must be >= now() (panics otherwise —
     *              see the file comment on past scheduling).
     * @param callback  Invoked when simulated time reaches @p when.
     * @param name  Optional label for diagnostics; recorded only while
     *              name tracing is enabled.
     */
    [[nodiscard]] Handle schedule(Tick when, Callback callback,
                                  std::string name = {});

    /** Schedule a cancellable callback @p delay ticks from now
     *  (delay >= 0; negative delays panic).  Discarding the Handle
     *  forfeits cancellation — use post()/postAfter() for that. */
    [[nodiscard]] Handle scheduleAfter(Tick delay, Callback callback,
                                       std::string name = {});

    /**
     * Fire-and-forget fast path: schedule a callback at absolute tick
     * @p when with no handle and no control-block allocation.  Same
     * validation as schedule(): the past and empty callbacks panic.
     * @return the event's sequence number (components that snapshot
     *         a pending post save it for the re-arm).
     */
    std::uint64_t post(Tick when, Callback callback,
                       std::string name = {});

    /** Fire-and-forget @p delay ticks from now (delay >= 0). */
    std::uint64_t postAfter(Tick delay, Callback callback,
                            std::string name = {});

    /** Cancel a pending event; no-op if already fired or cancelled. */
    void cancel(Handle &handle);

    /** Pre-size the heap and slab for @p n simultaneous live events
     *  (optional; the queue grows on demand either way). */
    void reserve(std::size_t n);

    /**
     * Record event names in a side table while enabled (off by
     * default: the hot path then never touches a string).  Names of
     * events scheduled while tracing was off are not recovered
     * retroactively.
     */
    void setNameTracing(bool enabled) { namesEnabled_ = enabled; }

    /** @return true if event names are being recorded. */
    bool nameTracing() const { return namesEnabled_; }

    /**
     * Names of live (pending, non-cancelled) events, ordered by firing
     * time then insertion order.  Events scheduled without a name or
     * while tracing was off report "(unnamed)".  Diagnostic only.
     */
    std::vector<std::string> pendingEventNames() const;

    /** Current simulated time. */
    [[nodiscard]] Tick now() const { return now_; }

    /** @return true if no live (non-cancelled) events remain. */
    [[nodiscard]] bool empty() const { return liveEvents_ == 0; }

    /** Number of live events currently scheduled. */
    [[nodiscard]] std::size_t size() const { return liveEvents_; }

    /** Most live events ever scheduled at once (queue pressure). */
    [[nodiscard]] std::size_t highWaterMark() const { return highWater_; }

    /** Total callbacks executed since construction. */
    [[nodiscard]] std::uint64_t numProcessed() const { return numProcessed_; }

    /**
     * Fire the single earliest pending event.
     * @return false if the queue was empty.
     */
    bool runOne();

    /**
     * Run every event with time <= @p end, then advance now() to
     * @p end even if the queue drains early.
     * @return number of events processed.
     */
    std::uint64_t runUntil(Tick end);

    /** Run until the queue is empty. @return events processed. */
    std::uint64_t runAll();

    /** @name Snapshot/branch protocol (see the file comment) */
    /** @{ */
    /** Freeze the queue's counters at the current instant. */
    [[nodiscard]] EventQueueState captureState() const;

    /**
     * Open a restore: discard every pending event (their handles
     * become inert) and adopt @p state's time and counters.  Until
     * endRestore(), only rearmSchedule()/rearmPost() may add events.
     */
    void beginRestore(const EventQueueState &state);

    /**
     * Re-register a cancellable callback saved from a snapshot.
     * @p seq must be a sequence number the snapshotted run had
     * already allocated (seq < nextSeq) and @p when must not precede
     * the restored now().  Only valid between beginRestore() and
     * endRestore().
     */
    [[nodiscard]] Handle rearmSchedule(Tick when, std::uint64_t seq,
                                       Callback callback,
                                       std::string name = {});

    /** Re-register a fire-and-forget callback saved from a
     *  snapshot; same rules as rearmSchedule(). */
    void rearmPost(Tick when, std::uint64_t seq, Callback callback,
                   std::string name = {});

    /**
     * Close the restore.  @p expectedLive is the number of events
     * the caller re-armed — passed explicitly rather than taken from
     * the snapshot because a branch may legitimately re-arm fewer
     * events than the source run had pending (e.g. an unobserved
     * baseline branch skips the stats task).
     */
    void endRestore(std::size_t expectedLive);

    /** @return true while a restore is open. */
    bool restoring() const { return restoring_; }
    /** @} */

  private:
    static constexpr std::uint32_t kNoSlot = 0xffffffffu;

    /** Slab entry; cancelled events keep their slot (callback
     *  cleared) until their heap entry surfaces, so a heap entry's
     *  slot index is never re-targeted underneath it. */
    struct Slot
    {
        Callback callback;
        std::shared_ptr<Handle::Control> control;  ///< null for posts  // polca-lint: allow(sim-shared-ptr)
        std::uint64_t seq = 0;
        std::uint32_t nextFree = kNoSlot;
    };

    /** What the heap actually orders: 24 bytes, no indirection. */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    struct Later
    {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Validate (when, callback) and enqueue; shared by both paths.
     *  @return the slab slot the event landed in. */
    std::uint32_t enqueue(Tick when, Callback &callback,
                          const std::string &name);

    /** Enqueue with a caller-supplied (snapshot-saved) seq; shared
     *  by both re-arm paths. */
    std::uint32_t rearm(Tick when, std::uint64_t seq,
                        Callback &callback, const std::string &name);

    std::uint32_t allocSlot();
    void freeSlot(std::uint32_t slot);

    /** Pop cancelled entries off the top of the heap, recycling their
     *  slots. */
    void skipDead();

    std::vector<HeapEntry> heap_;
    std::vector<Slot> slab_;
    std::uint32_t freeHead_ = kNoSlot;

    /** seq -> diagnostic name; populated only while namesEnabled_. */
    std::unordered_map<std::uint64_t, std::string> names_;
    bool namesEnabled_ = false;

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t numProcessed_ = 0;
    std::size_t liveEvents_ = 0;
    std::size_t highWater_ = 0;
    bool restoring_ = false;
};

} // namespace polca::sim

