/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A minimal, deterministic event queue: events are callbacks scheduled
 * at absolute ticks.  Ties are broken by insertion order so that a run
 * with the same seed always produces the same trajectory.  Events may
 * be cancelled through the handle returned at scheduling time.
 */

#ifndef POLCA_SIM_EVENT_QUEUE_HH
#define POLCA_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace polca::sim {

/**
 * Time-ordered queue of callbacks; the heart of the simulator.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /**
     * Opaque handle to a scheduled event.  Default-constructed handles
     * are inert; cancel() on an already-fired or cancelled handle is a
     * no-op.
     */
    class Handle
    {
      public:
        Handle() = default;

        /** @return true if the event has neither fired nor been
         *  cancelled. */
        bool pending() const { return record_ && !record_->done; }

      private:
        friend class EventQueue;

        struct Record
        {
            Tick when = 0;
            std::uint64_t seq = 0;
            bool done = false;      ///< fired or cancelled
            Callback callback;
            std::string name;
        };

        explicit Handle(std::shared_ptr<Record> record)
            : record_(std::move(record))
        {}

        std::shared_ptr<Record> record_;
    };

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule a callback at absolute tick @p when.
     *
     * @param when  Absolute time; must be >= now().
     * @param callback  Invoked when simulated time reaches @p when.
     * @param name  Optional label for diagnostics.
     */
    Handle schedule(Tick when, Callback callback, std::string name = {});

    /** Schedule a callback @p delay ticks from now (delay >= 0). */
    Handle scheduleAfter(Tick delay, Callback callback,
                         std::string name = {});

    /** Cancel a pending event; no-op if already fired or cancelled. */
    void cancel(Handle &handle);

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** @return true if no live (non-cancelled) events remain. */
    bool empty() const { return liveEvents_ == 0; }

    /** Number of live events currently scheduled. */
    std::size_t size() const { return liveEvents_; }

    /** Most live events ever scheduled at once (queue pressure). */
    std::size_t highWaterMark() const { return highWater_; }

    /** Total callbacks executed since construction. */
    std::uint64_t numProcessed() const { return numProcessed_; }

    /**
     * Fire the single earliest pending event.
     * @return false if the queue was empty.
     */
    bool runOne();

    /**
     * Run every event with time <= @p end, then advance now() to
     * @p end even if the queue drains early.
     * @return number of events processed.
     */
    std::uint64_t runUntil(Tick end);

    /** Run until the queue is empty. @return events processed. */
    std::uint64_t runAll();

  private:
    using RecordPtr = std::shared_ptr<Handle::Record>;

    struct Later
    {
        bool
        operator()(const RecordPtr &a, const RecordPtr &b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            return a->seq > b->seq;
        }
    };

    /** Pop cancelled records off the top of the heap. */
    void skipDead();

    std::priority_queue<RecordPtr, std::vector<RecordPtr>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t numProcessed_ = 0;
    std::size_t liveEvents_ = 0;
    std::size_t highWater_ = 0;
};

} // namespace polca::sim

#endif // POLCA_SIM_EVENT_QUEUE_HH
