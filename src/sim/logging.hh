/**
 * @file
 * gem5-style status and error reporting.
 *
 * Four severities, following the gem5 convention:
 *  - panic():  an internal invariant was violated (a simulator bug);
 *              aborts so a debugger or core dump can capture state.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid arguments); exits cleanly.
 *  - warn():   something is suspicious but simulation continues.
 *  - inform(): plain status output.
 */

#ifndef POLCA_SIM_LOGGING_HH
#define POLCA_SIM_LOGGING_HH

#include <sstream>
#include <string>

namespace polca::sim {

namespace detail {

/** Concatenate a variadic argument pack via an ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Report an internal simulator bug and abort. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report an unrecoverable user error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report simulation status to the user. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Silence warn()/inform() output (used by tests and sweeps). */
void setQuiet(bool quiet);

/** @return true if warn()/inform() output is suppressed. */
bool quiet();

} // namespace polca::sim

#endif // POLCA_SIM_LOGGING_HH
