/**
 * @file
 * gem5-style status and error reporting.
 *
 * Four severities, following the gem5 convention:
 *  - panic():  an internal invariant was violated (a simulator bug);
 *              aborts so a debugger or core dump can capture state.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid arguments); exits cleanly.
 *  - warn():   something is suspicious but simulation continues.
 *  - inform(): plain status output.
 *
 * When a Simulation is alive, warn()/inform() lines are prefixed
 * with the current simulated time ("warn: [t=12.000000s] ...") so
 * log output correlates with exported traces (obs::TraceRecorder
 * timestamps are the same ticks).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace polca::sim {

namespace detail {

/** Concatenate a variadic argument pack via an ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Report an internal simulator bug and abort. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report an unrecoverable user error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report simulation status to the user. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/**
 * Silence warn()/inform() output (used by tests and sweeps).
 *
 * Contract: the flag is process-wide and atomic, so it is safe to
 * toggle at any point, including from inside event callbacks while a
 * simulation is running.  It gates only warn()/inform() — panic()
 * and fatal() always report.  Messages emitted while quiet are
 * discarded, never buffered: un-quieting does not replay them.
 * Toggling is not synchronized with concurrent warn()/inform() calls
 * from *other* threads (the simulator is single-threaded; tests that
 * flip the flag mid-run from the same thread see it take effect on
 * the very next message).  Prefer QuietScope in tests so the
 * previous state is restored on every exit path.
 */
void setQuiet(bool quiet);

/** @return true if warn()/inform() output is suppressed. */
bool quiet();

/** RAII guard: sets the quiet flag and restores the previous value. */
class QuietScope
{
  public:
    explicit QuietScope(bool quietValue)
        : previous_(quiet())
    {
        setQuiet(quietValue);
    }
    ~QuietScope() { setQuiet(previous_); }
    QuietScope(const QuietScope &) = delete;
    QuietScope &operator=(const QuietScope &) = delete;

  private:
    bool previous_;
};

/**
 * Prefix @p msg with "[t=<seconds>s] " when a simulated-time source
 * is installed (i.e. a Simulation is alive on the calling thread);
 * returns @p msg unchanged otherwise.  Shared by warn()/inform() and
 * the contract layer's failure reports.
 */
std::string withSimTimePrefix(const std::string &msg);

/**
 * Install the time source used to prefix warn()/inform() messages
 * with the current simulated time; pass nullptr to remove it.
 * Simulation installs/removes itself automatically — user code
 * rarely calls this directly.
 */
void setLogTimeSource(std::function<std::int64_t()> source);

/**
 * Redirect warn()/inform() lines to @p sink instead of
 * stderr/stdout (tests); pass nullptr to restore.  The sink receives
 * the severity ("warn"/"info") and the formatted message including
 * any time prefix.  The quiet flag still applies.
 */
void setLogSink(
    std::function<void(const char *severity, const std::string &line)>
        sink);

} // namespace polca::sim

