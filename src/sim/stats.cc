#include "sim/stats.hh"

#include <algorithm>
#include <cmath>

#include "core/contracts.hh"

namespace polca::sim {

void
Accumulator::add(double value)
{
    ++count_;
    double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void
Accumulator::merge(const Accumulator &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    double n1 = static_cast<double>(count_);
    double n2 = static_cast<double>(other.count_);
    double delta = other.mean_ - mean_;
    double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

double
Accumulator::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

void
Sampler::add(double value)
{
    values_.push_back(value);
    sorted_ = values_.size() <= 1;
}

void
Sampler::reset()
{
    values_.clear();
    sorted_ = true;
}

double
Sampler::mean() const
{
    if (values_.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values_)
        sum += v;
    return sum / static_cast<double>(values_.size());
}

double
Sampler::min() const
{
    POLCA_CHECK(!values_.empty(), "min on empty sampler");
    return *std::min_element(values_.begin(), values_.end());
}

double
Sampler::max() const
{
    POLCA_CHECK(!values_.empty(), "max on empty sampler");
    return *std::max_element(values_.begin(), values_.end());
}

void
Sampler::ensureSorted() const
{
    if (!sorted_) {
        std::sort(values_.begin(), values_.end());
        sorted_ = true;
    }
}

double
Sampler::quantile(double q) const
{
    POLCA_CHECK(!values_.empty(), "quantile on empty sampler");
    POLCA_CHECK(q >= 0.0 && q <= 1.0, "q=", q, " outside [0,1]");
    ensureSorted();

    double pos = q * static_cast<double>(values_.size() - 1);
    std::size_t lower = static_cast<std::size_t>(pos);
    double frac = pos - static_cast<double>(lower);
    if (lower + 1 >= values_.size())
        return values_.back();
    return values_[lower] * (1.0 - frac) + values_[lower + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    POLCA_CHECK(bins > 0, "zero bins");
    POLCA_CHECK(hi > lo, "hi (", hi, ") must exceed lo (", lo, ")");
}

void
Histogram::add(double value)
{
    double t = (value - lo_) / (hi_ - lo_);
    auto bin = static_cast<std::ptrdiff_t>(
        t * static_cast<double>(counts_.size()));
    bin = std::clamp<std::ptrdiff_t>(
        bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(bin)];
    ++total_;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
}

double
Histogram::binLow(std::size_t bin) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
        static_cast<double>(counts_.size());
}

double
Histogram::binHigh(std::size_t bin) const
{
    return binLow(bin + 1);
}

double
Histogram::binFraction(std::size_t bin) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_.at(bin)) /
        static_cast<double>(total_);
}

double
quantileOf(std::vector<double> values, double q)
{
    Sampler sampler;
    for (double v : values)
        sampler.add(v);
    return sampler.quantile(q);
}

} // namespace polca::sim
