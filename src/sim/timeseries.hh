/**
 * @file
 * Time-series container and the window analytics the paper's cluster
 * characterization needs (moving averages, max power spike within a
 * time window, resampling onto a regular grid).
 */

#pragma once

#include <cstddef>
#include <vector>

#include "sim/types.hh"

namespace polca::sim {

/**
 * Sequence of (tick, value) samples with non-decreasing time.
 * Values are interpreted as a step function: the recorded value holds
 * until the next sample.
 */
class TimeSeries
{
  public:
    struct Point
    {
        Tick time;
        double value;
    };

    TimeSeries() = default;

    /** Reserve capacity for @p n points. */
    void reserve(std::size_t n) { points_.reserve(n); }

    /** Append a sample; @p time must be >= the last sample's time. */
    void add(Tick time, double value);

    [[nodiscard]] bool empty() const { return points_.empty(); }
    [[nodiscard]] std::size_t size() const { return points_.size(); }

    const std::vector<Point> &points() const { return points_; }
    const Point &at(std::size_t i) const { return points_.at(i); }

    [[nodiscard]] Tick startTime() const;
    [[nodiscard]] Tick endTime() const;

    /**
     * Step-function value at @p time: the value of the last sample at
     * or before @p time.  Querying before the first sample returns the
     * first sample's value.
     */
    [[nodiscard]] double valueAt(Tick time) const;

    /** Max/min/mean over sample values (unweighted). */
    [[nodiscard]] double maxValue() const;
    [[nodiscard]] double minValue() const;
    [[nodiscard]] double meanValue() const;

    /** Time-weighted mean (step integration over [start, end]). */
    [[nodiscard]] double timeWeightedMean() const;

    /**
     * Resample onto a regular grid of period @p dt starting at the
     * first sample, using step interpolation.
     */
    [[nodiscard]] TimeSeries resampled(Tick dt) const;

    /**
     * Trailing moving average with window @p window: output point i
     * holds the unweighted mean of all samples in (t_i - window, t_i].
     * O(n) two-pointer implementation.
     */
    [[nodiscard]] TimeSeries movingAverage(Tick window) const;

    /**
     * Largest upward excursion within any window of length
     * @p window: max over sample pairs i < j with t_j - t_i <= window
     * of (v_j - v_i).  This is the paper's "max power spike in N
     * seconds" metric (Table 4).  Returns 0 for monotonically
     * non-increasing series.
     */
    [[nodiscard]] double maxRiseWithin(Tick window) const;

    /** Scale all values by @p factor (returns a new series). */
    [[nodiscard]] TimeSeries scaled(double factor) const;

    /** Drop all samples. */
    void clear() { points_.clear(); }

  private:
    std::vector<Point> points_;
};

/**
 * Sum several series on a regular grid of period @p dt spanning the
 * union of their extents; missing leading values are treated as the
 * series' first value (step extension).  Used to aggregate per-server
 * power into row-level power.
 */
TimeSeries sumOnGrid(const std::vector<const TimeSeries *> &series,
                     Tick dt);

} // namespace polca::sim

