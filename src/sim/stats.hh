/**
 * @file
 * Statistics primitives: running accumulators and exact-percentile
 * samplers used throughout the models and the POLCA evaluation.
 */

#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace polca::sim {

/**
 * Streaming mean/variance/min/max accumulator (Welford's algorithm).
 * O(1) memory; suitable for power samples over week-long runs.
 */
class Accumulator
{
  public:
    /** Add one observation. */
    void add(double value);

    /** Merge another accumulator into this one. */
    void merge(const Accumulator &other);

    /** Drop all observations. */
    void reset();

    std::size_t count() const { return count_; }
    double sum() const { return mean_ * static_cast<double>(count_); }

    /** Mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Population variance; 0 with fewer than 2 observations. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Minimum observation; +inf when empty. */
    double min() const { return min_; }

    /** Maximum observation; -inf when empty. */
    double max() const { return max_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Stores every observation for exact quantiles (p50/p99/max latency
 * reporting).  Values are sorted lazily on first quantile query.
 */
class Sampler
{
  public:
    /** Add one observation. */
    void add(double value);

    /** Drop all observations. */
    void reset();

    std::size_t count() const { return values_.size(); }
    bool empty() const { return values_.empty(); }

    double mean() const;
    double min() const;
    double max() const;

    /**
     * Exact quantile with linear interpolation between order
     * statistics.  @p q in [0, 1]; querying an empty sampler is a
     * caller error.
     */
    double quantile(double q) const;

    /** Convenience aliases. */
    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    /** Read-only access to the raw observations (unsorted order not
     *  guaranteed after a quantile query). */
    const std::vector<double> &values() const { return values_; }

  private:
    void ensureSorted() const;

    mutable std::vector<double> values_;
    mutable bool sorted_ = true;
};

/**
 * Fixed-bin histogram over [lo, hi); out-of-range values clamp to the
 * edge bins.  Used for power-draw distribution reporting.
 */
class Histogram
{
  public:
    /** @param bins number of equal-width bins (>= 1). */
    Histogram(double lo, double hi, std::size_t bins);

    void add(double value);
    void reset();

    std::size_t bins() const { return counts_.size(); }
    std::size_t total() const { return total_; }
    std::size_t binCount(std::size_t bin) const { return counts_.at(bin); }

    /** Lower edge of bin @p bin. */
    double binLow(std::size_t bin) const;

    /** Upper edge of bin @p bin. */
    double binHigh(std::size_t bin) const;

    /** Fraction of observations in bin @p bin (0 when empty). */
    double binFraction(std::size_t bin) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

/**
 * Exact quantile of a value vector (copies + sorts).  Convenience for
 * one-shot analysis.
 */
double quantileOf(std::vector<double> values, double q);

} // namespace polca::sim

