/**
 * @file
 * Simulation context: owns the event queue and the root random stream
 * and provides periodic-task scaffolding (telemetry pollers, capping
 * controllers, and samplers are all periodic).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace polca::sim {

/**
 * Owns an EventQueue and the root Rng.  Components hold a reference to
 * the Simulation and schedule themselves on its queue; the Simulation
 * must therefore outlive all components.
 */
class Simulation
{
  public:
    /**
     * Construction also registers this simulation as the "current"
     * one for log-time prefixing: while at least one Simulation is
     * alive, warn()/inform() lines carry the innermost live
     * simulation's now().  Destruction restores the previous one.
     *
     * The "current" stack is thread_local, so simulations running on
     * different threads (e.g. parallel sweep points) each prefix
     * their own thread's log lines with their own clock; a thread
     * with no live simulation logs unprefixed.
     */
    explicit Simulation(std::uint64_t seed = 1);
    ~Simulation();

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    EventQueue &queue() { return queue_; }
    const EventQueue &queue() const { return queue_; }

    /** Root random stream; fork() children per component. */
    Rng &rng() { return rng_; }

    /** Current simulated time. */
    Tick now() const { return queue_.now(); }

    /**
     * Register a periodic task firing every @p period ticks, first at
     * now() + @p phase.  Tasks persist until stop() or destruction of
     * the returned token.  The callback receives the firing tick.
     */
    class PeriodicTask
    {
      public:
        /** Schedule position of a task at a snapshot boundary. */
        struct State
        {
            bool running = false;
            Tick when = 0;          ///< next firing time
            std::uint64_t seq = 0;  ///< its saved sequence number
        };

        ~PeriodicTask() { stop(); }
        PeriodicTask(const PeriodicTask &) = delete;
        PeriodicTask &operator=(const PeriodicTask &) = delete;

        /** Cancel any pending firing; the task will not run again. */
        void stop();

        /** @return true if the task will fire again. */
        bool running() const { return running_; }

        /** Capture the schedule position (snapshot support). */
        [[nodiscard]] State saveState() const;

        /**
         * Re-arm an equivalent task at the saved position.  Only
         * valid while the owning queue has a restore open (the
         * build-time pending event was discarded by beginRestore).
         */
        void restoreState(const State &state);

      private:
        friend class Simulation;
        PeriodicTask(Simulation &sim, Tick period,
                     std::function<void(Tick)> callback);
        void arm();
        void fire();

        Simulation &sim_;
        // polca-snapshot: skip(period_, immutable schedule config)
        Tick period_;
        std::function<void(Tick)> callback_;
        EventQueue::Handle pending_;
        bool running_ = true;
    };

    /**
     * Create a periodic task.  @p phase delays the first firing
     * (default: one full period from now).
     */
    [[nodiscard]] std::unique_ptr<PeriodicTask>
    every(Tick period, std::function<void(Tick)> callback,
          Tick phase = -1);

    /** Run the simulation until tick @p end. */
    void runUntil(Tick end) { queue_.runUntil(end); }

    /** Run for @p duration ticks from the current time. */
    void runFor(Tick duration) { queue_.runUntil(now() + duration); }

  private:
    EventQueue queue_;
    Rng rng_;
};

} // namespace polca::sim

