#include "sim/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "sim/types.hh"

namespace polca::sim {

namespace {

std::atomic<bool> quietFlag{false};

std::function<std::int64_t()> &
timeSource()
{
    static std::function<std::int64_t()> source;
    return source;
}

std::function<void(const char *, const std::string &)> &
logSink()
{
    static std::function<void(const char *, const std::string &)> sink;
    return sink;
}

void
report(const char *severity, std::FILE *stream, const std::string &msg)
{
    if (quiet())
        return;
    std::string line = withSimTimePrefix(msg);
    const auto &sink = logSink();
    if (sink) {
        sink(severity, line);
        return;
    }
    std::fprintf(stream, "%s: %s\n", severity, line.c_str());
}

} // namespace

std::string
withSimTimePrefix(const std::string &msg)
{
    const auto &source = timeSource();
    if (!source)
        return msg;
    char prefix[48];
    std::snprintf(prefix, sizeof(prefix), "[t=%.6fs] ",
                  ticksToSeconds(source()));
    return prefix + msg;
}

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
quiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

void
setLogTimeSource(std::function<std::int64_t()> source)
{
    timeSource() = std::move(source);
}

void
setLogSink(
    std::function<void(const char *severity, const std::string &line)>
        sink)
{
    logSink() = std::move(sink);
}

namespace detail {

void
panicImpl(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    report("warn", stderr, msg);
}

void
informImpl(const std::string &msg)
{
    report("info", stdout, msg);
}

} // namespace detail

} // namespace polca::sim
