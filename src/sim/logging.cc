#include "sim/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace polca::sim {

namespace {
std::atomic<bool> quietFlag{false};
} // namespace

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
quiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

namespace detail {

void
panicImpl(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!quiet())
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quiet())
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace polca::sim
