#include "faults/fault_injector.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace polca::faults {

FaultInjector::FaultInjector(sim::Simulation &sim, FaultPlan plan,
                             sim::Rng rng)
    : sim_(sim), plan_(std::move(plan)), rng_(rng)
{
    plan_.validate();
}

void
FaultInjector::attachTelemetry(telemetry::RowManager &rowManager)
{
    rowManager.setFaultHook(
        [this](sim::Tick now, double watts) {
            return filterReading(now, watts);
        });
}

void
FaultInjector::attachChannels(
    std::vector<telemetry::SmbpbiController *> channels)
{
    for (telemetry::SmbpbiController *channel : channels) {
        if (!channel)
            sim::panic("FaultInjector: null channel");
        channels_.push_back(channel);
    }
}

void
FaultInjector::attachServers(
    std::vector<cluster::InferenceServer *> servers)
{
    for (cluster::InferenceServer *server : servers) {
        if (!server)
            sim::panic("FaultInjector: null server");
        servers_.push_back(server);
    }
}

void
FaultInjector::setOutage(bool active)
{
    for (telemetry::SmbpbiController *channel : channels_)
        channel->setOutage(active);
}

void
FaultInjector::start()
{
    if (started_)
        sim::panic("FaultInjector: start called twice");
    started_ = true;

    for (const OobOutage &outage : plan_.oobOutages) {
        if (!channels_.empty()) {
            sim_.queue().schedule(
                outage.start, [this] { setOutage(true); },
                "fault-oob-outage-start");
            sim_.queue().schedule(
                outage.start + outage.duration,
                [this] { setOutage(false); },
                "fault-oob-outage-end");
        }
    }

    for (const ServerCrash &crash : plan_.crashes) {
        if (static_cast<std::size_t>(crash.serverIndex) >=
            servers_.size()) {
            sim::fatal("FaultInjector: crash server index ",
                       crash.serverIndex, " but only ",
                       servers_.size(), " servers attached");
        }
        cluster::InferenceServer *victim =
            servers_[static_cast<std::size_t>(crash.serverIndex)];
        sim_.queue().schedule(
            crash.at,
            [this, victim] {
                victim->crash();
                ++crashesInjected_;
            },
            "fault-crash");
        sim_.queue().schedule(
            crash.at + crash.downtime,
            [victim] { victim->restore(); }, "fault-restore");
    }
}

std::optional<double>
FaultInjector::filterReading(sim::Tick now, double watts)
{
    // 1. Blackout windows: the reading never happens.
    for (const BlackoutWindow &w : plan_.blackouts) {
        if (now >= w.start && now < w.start + w.duration) {
            ++blackedOut_;
            return std::nullopt;
        }
    }

    // 2. Bursty loss: advance the Gilbert–Elliott channel once per
    //    scheduled reading, then lose the reading at the state's
    //    loss rate.  State advances even for delivered readings so
    //    the process is well-defined regardless of outcome.
    if (plan_.burstyLoss.enabled) {
        const BurstyLoss &ge = plan_.burstyLoss;
        if (inBurst_)
            inBurst_ = !rng_.bernoulli(ge.exitBurstProbability);
        else
            inBurst_ = rng_.bernoulli(ge.enterBurstProbability);
        double lossProbability = inBurst_ ? ge.burstLossProbability
                                          : ge.goodLossProbability;
        if (lossProbability > 0.0 &&
            rng_.bernoulli(lossProbability)) {
            ++burstDropped_;
            return std::nullopt;
        }
    }

    // 3. Sensor corruption: the reading arrives, but lies.
    bool wasCorrupted = false;
    for (const SensorFault &fault : plan_.sensorFaults) {
        if (now < fault.start || now >= fault.start + fault.duration)
            continue;
        switch (fault.mode) {
          case SensorFaultMode::Bias:
            watts += fault.biasWatts;
            break;
          case SensorFaultMode::Noise:
            watts += rng_.normal(0.0, fault.noiseStddevWatts);
            break;
          case SensorFaultMode::StuckAtLast:
            if (haveLastGood_)
                watts = lastGoodWatts_;
            break;
        }
        wasCorrupted = true;
    }
    if (wasCorrupted) {
        ++corrupted_;
        return std::max(0.0, watts);
    }

    lastGoodWatts_ = watts;
    haveLastGood_ = true;
    return watts;
}

} // namespace polca::faults
