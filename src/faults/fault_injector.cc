#include "faults/fault_injector.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace polca::faults {

FaultInjector::FaultInjector(sim::Simulation &sim, FaultPlan plan,
                             sim::Rng rng)
    : sim_(sim), plan_(std::move(plan)), rng_(rng)
{
    plan_.validate();
}

void
FaultInjector::attachTelemetry(telemetry::RowManager &rowManager)
{
    rowManager.setFaultHook(
        [this](sim::Tick now, double watts) {
            return filterReading(now, watts);
        });
}

void
FaultInjector::attachChannels(
    std::vector<telemetry::SmbpbiController *> channels)
{
    for (telemetry::SmbpbiController *channel : channels) {
        if (!channel)
            sim::panic("FaultInjector: null channel");
        channels_.push_back(channel);
    }
}

void
FaultInjector::attachServers(
    std::vector<cluster::InferenceServer *> servers)
{
    for (cluster::InferenceServer *server : servers) {
        if (!server)
            sim::panic("FaultInjector: null server");
        servers_.push_back(server);
    }
}

void
FaultInjector::attachController(ControllerHooks *controller)
{
    controller_ = controller;
}

void
FaultInjector::attachObservability(obs::Observability *obs)
{
    if (!obs) {
        trace_ = nullptr;
        blackedOutStat_ = burstDroppedStat_ = corruptedStat_ =
            crashStat_ = controllerCrashStat_ = nullptr;
        return;
    }
    trace_ = &obs->trace;
    blackedOutStat_ = &obs->metrics.counter(
        "faults.blacked_out_readings",
        "readings suppressed by blackout windows");
    burstDroppedStat_ = &obs->metrics.counter(
        "faults.burst_dropped_readings",
        "readings lost to the bursty-loss channel");
    corruptedStat_ = &obs->metrics.counter(
        "faults.corrupted_readings",
        "readings delivered with a corrupted value");
    crashStat_ = &obs->metrics.counter(
        "faults.crashes_injected", "server crash events executed");
    controllerCrashStat_ = &obs->metrics.counter(
        "faults.controller_crashes_injected",
        "controller crash events executed");
}

void
FaultInjector::setOutage(bool active)
{
    for (telemetry::SmbpbiController *channel : channels_)
        channel->setOutage(active);
}

void
FaultInjector::start()
{
    if (started_)
        sim::panic("FaultInjector: start called twice");
    started_ = true;

    // Every planned window is known a priori; record them as spans
    // now so the trace shows fault context even for windows whose
    // effects never fire (e.g. a blackout with no reading in it).
    if (trace_) {
        for (const BlackoutWindow &w : plan_.blackouts) {
            trace_->complete(obs::TraceCategory::Fault,
                             "telemetry_blackout", w.start,
                             w.duration, -2, 0.0);
        }
        for (const OobOutage &o : plan_.oobOutages) {
            trace_->complete(obs::TraceCategory::Fault, "oob_outage",
                             o.start, o.duration, -2, 0.0);
        }
        for (const SensorFault &f : plan_.sensorFaults) {
            trace_->complete(obs::TraceCategory::Fault, "sensor_fault",
                             f.start, f.duration, -2,
                             static_cast<double>(f.mode));
        }
        for (const ServerCrash &c : plan_.crashes) {
            trace_->complete(obs::TraceCategory::Fault,
                             "server_downtime", c.at, c.downtime,
                             c.serverIndex,
                             static_cast<double>(c.serverIndex));
        }
        for (const ControllerCrash &c : plan_.controllerCrashes) {
            trace_->complete(obs::TraceCategory::Fault,
                             "controller_downtime", c.at, c.downtime,
                             -3, c.coldRestart ? 1.0 : 0.0);
        }
    }

    for (const OobOutage &outage : plan_.oobOutages) {
        if (!channels_.empty()) {
            sim_.queue().post(
                outage.start, [this] { setOutage(true); },
                "fault-oob-outage-start");
            sim_.queue().post(
                outage.start + outage.duration,
                [this] { setOutage(false); },
                "fault-oob-outage-end");
        }
    }

    for (const ServerCrash &crash : plan_.crashes) {
        if (static_cast<std::size_t>(crash.serverIndex) >=
            servers_.size()) {
            sim::fatal("FaultInjector: crash server index ",
                       crash.serverIndex, " but only ",
                       servers_.size(), " servers attached");
        }
        cluster::InferenceServer *victim =
            servers_[static_cast<std::size_t>(crash.serverIndex)];
        sim_.queue().post(
            crash.at,
            [this, victim] {
                victim->crash();
                ++crashesInjected_;
                if (crashStat_)
                    ++*crashStat_;
                if (trace_) {
                    trace_->instant(obs::TraceCategory::Fault,
                                    "server_crash", sim_.now(),
                                    victim->id(),
                                    static_cast<double>(victim->id()));
                }
            },
            "fault-crash");
        if (crash.permanent)
            continue;  // deliberately dark for the rest of the run
        sim_.queue().post(
            crash.at + crash.downtime,
            [this, victim] {
                victim->restore();
                // The reboot wiped the server's applied OOB state;
                // tell the controller so it can reset per-channel
                // bookkeeping and re-assert its caps.
                if (controller_)
                    controller_->serverRestarted(victim);
            },
            "fault-restore");
    }

    for (const ControllerCrash &crash : plan_.controllerCrashes) {
        if (!controller_)
            break;  // unmanaged run: nothing to crash
        bool cold = crash.coldRestart;
        sim_.queue().post(
            crash.at,
            [this] {
                controller_->controllerCrash();
                ++controllerCrashesInjected_;
                if (controllerCrashStat_)
                    ++*controllerCrashStat_;
                if (trace_) {
                    trace_->instant(obs::TraceCategory::Fault,
                                    "controller_crash", sim_.now(),
                                    -3, 0.0);
                }
            },
            "fault-controller-crash");
        sim_.queue().post(
            crash.at + crash.downtime,
            [this, cold] { controller_->controllerRestart(cold); },
            "fault-controller-restart");
    }
}

std::optional<double>
FaultInjector::filterReading(sim::Tick now, double watts)
{
    // 1. Blackout windows: the reading never happens.
    for (const BlackoutWindow &w : plan_.blackouts) {
        if (now >= w.start && now < w.start + w.duration) {
            ++blackedOut_;
            if (blackedOutStat_)
                ++*blackedOutStat_;
            return std::nullopt;
        }
    }

    // 2. Bursty loss: advance the Gilbert–Elliott channel once per
    //    scheduled reading, then lose the reading at the state's
    //    loss rate.  State advances even for delivered readings so
    //    the process is well-defined regardless of outcome.
    if (plan_.burstyLoss.enabled) {
        const BurstyLoss &ge = plan_.burstyLoss;
        if (inBurst_)
            inBurst_ = !rng_.bernoulli(ge.exitBurstProbability);
        else
            inBurst_ = rng_.bernoulli(ge.enterBurstProbability);
        double lossProbability = inBurst_ ? ge.burstLossProbability
                                          : ge.goodLossProbability;
        if (lossProbability > 0.0 &&
            rng_.bernoulli(lossProbability)) {
            ++burstDropped_;
            if (burstDroppedStat_)
                ++*burstDroppedStat_;
            return std::nullopt;
        }
    }

    // 3. Sensor corruption: the reading arrives, but lies.
    bool wasCorrupted = false;
    for (const SensorFault &fault : plan_.sensorFaults) {
        if (now < fault.start || now >= fault.start + fault.duration)
            continue;
        switch (fault.mode) {
          case SensorFaultMode::Bias:
            watts += fault.biasWatts;
            break;
          case SensorFaultMode::Noise:
            watts += rng_.normal(0.0, fault.noiseStddevWatts);
            break;
          case SensorFaultMode::StuckAtLast:
            if (haveLastGood_)
                watts = lastGoodWatts_;
            break;
        }
        wasCorrupted = true;
    }
    if (wasCorrupted) {
        ++corrupted_;
        if (corruptedStat_)
            ++*corruptedStat_;
        return std::max(0.0, watts);
    }

    lastGoodWatts_ = watts;
    haveLastGood_ = true;
    return watts;
}

} // namespace polca::faults
