#include "faults/fault_plan.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace polca::faults {

const char *
toString(SensorFaultMode mode)
{
    switch (mode) {
      case SensorFaultMode::Bias:
        return "bias";
      case SensorFaultMode::Noise:
        return "noise";
      case SensorFaultMode::StuckAtLast:
        return "stuck-at-last";
    }
    return "?";
}

bool
FaultPlan::empty() const
{
    return blackouts.empty() && !burstyLoss.enabled &&
        sensorFaults.empty() && oobOutages.empty() && crashes.empty();
}

namespace {

void
checkWindow(const char *what, sim::Tick start, sim::Tick duration)
{
    if (start < 0 || duration <= 0) {
        sim::fatal("FaultPlan: ", what, " window [", start, ", +",
                   duration, ") is not a valid interval");
    }
}

void
checkProbability(const char *what, double p)
{
    if (p < 0.0 || p > 1.0)
        sim::fatal("FaultPlan: ", what, " probability ", p,
                   " outside [0,1]");
}

} // namespace

void
FaultPlan::validate() const
{
    for (const BlackoutWindow &w : blackouts)
        checkWindow("blackout", w.start, w.duration);
    if (burstyLoss.enabled) {
        checkProbability("enter-burst",
                         burstyLoss.enterBurstProbability);
        checkProbability("exit-burst", burstyLoss.exitBurstProbability);
        checkProbability("good-loss", burstyLoss.goodLossProbability);
        checkProbability("burst-loss",
                         burstyLoss.burstLossProbability);
    }
    for (const SensorFault &f : sensorFaults) {
        checkWindow("sensor-fault", f.start, f.duration);
        if (f.mode == SensorFaultMode::Noise &&
            f.noiseStddevWatts < 0.0) {
            sim::fatal("FaultPlan: negative noise stddev");
        }
    }
    for (const OobOutage &o : oobOutages)
        checkWindow("oob-outage", o.start, o.duration);
    for (const ServerCrash &c : crashes) {
        checkWindow("crash", c.at, c.downtime);
        if (c.serverIndex < 0)
            sim::fatal("FaultPlan: negative crash server index");
    }
}

const std::vector<std::string> &
scenarioNames()
{
    static const std::vector<std::string> names = {
        "none",   "blackout",   "bursty",
        "flaky-sensor", "oob-outage", "crashes",
    };
    return names;
}

FaultPlan
scenarioByName(const std::string &name, sim::Tick duration,
               int numServers)
{
    if (duration <= 0)
        sim::fatal("scenarioByName: non-positive duration");

    FaultPlan plan;
    if (name == "none")
        return plan;

    if (name == "blackout") {
        BlackoutWindow window;
        window.start = duration / 4;
        window.duration =
            std::min<sim::Tick>(sim::secondsToTicks(900),
                                duration / 2);
        plan.blackouts.push_back(window);
    } else if (name == "bursty") {
        plan.burstyLoss.enabled = true;
        plan.burstyLoss.enterBurstProbability = 0.01;
        plan.burstyLoss.exitBurstProbability = 0.1;
        plan.burstyLoss.goodLossProbability = 0.01;
        plan.burstyLoss.burstLossProbability = 0.95;
    } else if (name == "flaky-sensor") {
        SensorFault bias;
        bias.start = duration / 5;
        bias.duration = duration / 5;
        bias.mode = SensorFaultMode::Bias;
        bias.biasWatts = -20000.0;  // under-reports: the unsafe lie
        plan.sensorFaults.push_back(bias);

        SensorFault stuck;
        stuck.start = (duration * 3) / 5;
        stuck.duration = duration / 5;
        stuck.mode = SensorFaultMode::StuckAtLast;
        plan.sensorFaults.push_back(stuck);
    } else if (name == "oob-outage") {
        OobOutage outage;
        outage.start = duration / 3;
        outage.duration =
            std::min<sim::Tick>(sim::secondsToTicks(1200),
                                duration / 3);
        plan.oobOutages.push_back(outage);
    } else if (name == "crashes") {
        // A rolling wave: every ~8 % of the run another server goes
        // down for 5 minutes.
        int victims = std::max(1, numServers / 4);
        for (int i = 0; i < victims; ++i) {
            ServerCrash crash;
            crash.at = duration / 10 + (duration * i) / 12;
            crash.downtime =
                std::min<sim::Tick>(sim::secondsToTicks(300),
                                    duration / 10);
            crash.serverIndex = i % std::max(1, numServers);
            plan.crashes.push_back(crash);
        }
    } else {
        std::string known;
        for (const std::string &n : scenarioNames())
            known += (known.empty() ? "" : "|") + n;
        sim::fatal("unknown fault scenario '", name, "' (use ", known,
                   ")");
    }
    plan.validate();
    return plan;
}

} // namespace polca::faults
