#include "faults/fault_plan.hh"

#include <algorithm>
#include <limits>
#include <utility>

#include "sim/logging.hh"

namespace polca::faults {

const char *
toString(SensorFaultMode mode)
{
    switch (mode) {
      case SensorFaultMode::Bias:
        return "bias";
      case SensorFaultMode::Noise:
        return "noise";
      case SensorFaultMode::StuckAtLast:
        return "stuck-at-last";
    }
    return "?";
}

bool
FaultPlan::empty() const
{
    return blackouts.empty() && !burstyLoss.enabled &&
        sensorFaults.empty() && oobOutages.empty() &&
        crashes.empty() && controllerCrashes.empty();
}

namespace {

std::string
windowText(sim::Tick start, sim::Tick duration)
{
    return "[" + std::to_string(start) + ", +" +
        std::to_string(duration) + ")";
}

void
checkWindow(std::vector<std::string> &out, const char *what,
            sim::Tick start, sim::Tick duration)
{
    if (start < 0 || duration <= 0) {
        out.push_back(std::string(what) + " window " +
                      windowText(start, duration) +
                      " is not a valid interval");
    }
}

void
checkProbability(std::vector<std::string> &out, const char *what,
                 double p)
{
    if (p < 0.0 || p > 1.0) {
        out.push_back(std::string(what) + " probability " +
                      std::to_string(p) + " outside [0,1]");
    }
}

/** Report every pair of overlapping [start, start+duration) windows
 *  in @p windows (already reduced to start/duration pairs). */
void
checkOverlaps(std::vector<std::string> &out, const char *what,
              std::vector<std::pair<sim::Tick, sim::Tick>> windows)
{
    std::sort(windows.begin(), windows.end());
    for (std::size_t i = 1; i < windows.size(); ++i) {
        const auto &[prevStart, prevDuration] = windows[i - 1];
        const auto &[start, duration] = windows[i];
        if (prevDuration > 0 && start < prevStart + prevDuration) {
            out.push_back(std::string(what) + " windows " +
                          windowText(prevStart, prevDuration) +
                          " and " + windowText(start, duration) +
                          " overlap");
        }
    }
}

} // namespace

std::vector<std::string>
FaultPlan::problems() const
{
    std::vector<std::string> out;

    std::vector<std::pair<sim::Tick, sim::Tick>> windows;
    for (const BlackoutWindow &w : blackouts) {
        checkWindow(out, "blackout", w.start, w.duration);
        windows.emplace_back(w.start, w.duration);
    }
    checkOverlaps(out, "blackout", windows);

    if (burstyLoss.enabled) {
        checkProbability(out, "enter-burst",
                         burstyLoss.enterBurstProbability);
        checkProbability(out, "exit-burst",
                         burstyLoss.exitBurstProbability);
        checkProbability(out, "good-loss",
                         burstyLoss.goodLossProbability);
        checkProbability(out, "burst-loss",
                         burstyLoss.burstLossProbability);
    }
    for (const SensorFault &f : sensorFaults) {
        checkWindow(out, "sensor-fault", f.start, f.duration);
        if (f.mode == SensorFaultMode::Noise &&
            f.noiseStddevWatts < 0.0) {
            out.push_back("sensor-fault noise stddev is negative");
        }
    }
    for (const OobOutage &o : oobOutages)
        checkWindow(out, "oob-outage", o.start, o.duration);

    // Crashes: a crash that never restarts leaves the server
    // permanently dark — legal only when said out loud.  Overlapping
    // downtime on one server means a crash of a server that is
    // already down.
    std::vector<std::pair<int, std::pair<sim::Tick, sim::Tick>>>
        byServer;
    for (const ServerCrash &c : crashes) {
        if (c.at < 0) {
            out.push_back("crash at negative time " +
                          std::to_string(c.at));
        }
        if (c.serverIndex < 0)
            out.push_back("crash has a negative server index");
        if (c.permanent) {
            if (c.downtime != 0) {
                out.push_back(
                    "permanent crash at " + std::to_string(c.at) +
                    " must not set a downtime (it never restarts)");
            }
        } else if (c.downtime <= 0) {
            out.push_back(
                "crash at " + std::to_string(c.at) + " has no "
                "restart; set permanent = true to deliberately "
                "leave the server dark");
        }
        byServer.emplace_back(
            c.serverIndex,
            std::make_pair(c.at, c.permanent
                                     ? std::numeric_limits<
                                           sim::Tick>::max() -
                                           c.at
                                     : c.downtime));
    }
    std::sort(byServer.begin(), byServer.end());
    for (std::size_t i = 1; i < byServer.size(); ++i) {
        if (byServer[i].first != byServer[i - 1].first)
            continue;
        const auto &[prevStart, prevDuration] = byServer[i - 1].second;
        const auto &[start, duration] = byServer[i].second;
        if (start < prevStart + prevDuration) {
            out.push_back(
                "server " + std::to_string(byServer[i].first) +
                " crashes at " + std::to_string(start) +
                " while already down (downtime " +
                windowText(prevStart, prevDuration) + ")");
        }
    }

    windows.clear();
    for (const ControllerCrash &c : controllerCrashes) {
        checkWindow(out, "controller-crash", c.at, c.downtime);
        windows.emplace_back(c.at, c.downtime);
    }
    checkOverlaps(out, "controller-crash", windows);
    return out;
}

void
FaultPlan::validate() const
{
    std::vector<std::string> found = problems();
    if (!found.empty())
        sim::fatal("FaultPlan: ", found.front());
}

const std::vector<std::string> &
scenarioNames()
{
    static const std::vector<std::string> names = {
        "none",   "blackout",   "bursty",
        "flaky-sensor", "oob-outage", "crashes",
    };
    return names;
}

FaultPlan
scenarioByName(const std::string &name, sim::Tick duration,
               int numServers)
{
    if (duration <= 0)
        sim::fatal("scenarioByName: non-positive duration");

    FaultPlan plan;
    if (name == "none")
        return plan;

    if (name == "blackout") {
        BlackoutWindow window;
        window.start = duration / 4;
        window.duration =
            std::min<sim::Tick>(sim::secondsToTicks(900),
                                duration / 2);
        plan.blackouts.push_back(window);
    } else if (name == "bursty") {
        plan.burstyLoss.enabled = true;
        plan.burstyLoss.enterBurstProbability = 0.01;
        plan.burstyLoss.exitBurstProbability = 0.1;
        plan.burstyLoss.goodLossProbability = 0.01;
        plan.burstyLoss.burstLossProbability = 0.95;
    } else if (name == "flaky-sensor") {
        SensorFault bias;
        bias.start = duration / 5;
        bias.duration = duration / 5;
        bias.mode = SensorFaultMode::Bias;
        bias.biasWatts = -20000.0;  // under-reports: the unsafe lie
        plan.sensorFaults.push_back(bias);

        SensorFault stuck;
        stuck.start = (duration * 3) / 5;
        stuck.duration = duration / 5;
        stuck.mode = SensorFaultMode::StuckAtLast;
        plan.sensorFaults.push_back(stuck);
    } else if (name == "oob-outage") {
        OobOutage outage;
        outage.start = duration / 3;
        outage.duration =
            std::min<sim::Tick>(sim::secondsToTicks(1200),
                                duration / 3);
        plan.oobOutages.push_back(outage);
    } else if (name == "crashes") {
        // A rolling wave: every ~8 % of the run another server goes
        // down for 5 minutes.
        int victims = std::max(1, numServers / 4);
        for (int i = 0; i < victims; ++i) {
            ServerCrash crash;
            crash.at = duration / 10 + (duration * i) / 12;
            crash.downtime =
                std::min<sim::Tick>(sim::secondsToTicks(300),
                                    duration / 10);
            crash.serverIndex = i % std::max(1, numServers);
            plan.crashes.push_back(crash);
        }
    } else {
        std::string known;
        for (const std::string &n : scenarioNames())
            known += (known.empty() ? "" : "|") + n;
        sim::fatal("unknown fault scenario '", name, "' (use ", known,
                   ")");
    }
    plan.validate();
    return plan;
}

} // namespace polca::faults
