/**
 * @file
 * Controller-facing fault hooks.
 *
 * The fault layer cannot depend on core (core links against faults),
 * so controller crash/restart events and server-restart
 * notifications go through this narrow interface.  The POLCA power
 * manager implements it; the injector only ever sees the abstract
 * hooks.
 */

#pragma once

namespace polca::telemetry {
class ClockControllable;
} // namespace polca::telemetry

namespace polca::faults {

/**
 * What a power controller must expose for fault injection.
 *
 * controllerCrash() models the controller process dying: it must
 * persist whatever snapshot it wants *before* losing its in-memory
 * state.  controllerRestart(cold) brings a replacement up; a warm
 * restart rehydrates from the persisted snapshot, a cold one starts
 * blind and is expected to fail safe until telemetry returns.
 * serverRestarted() fires after a crashed server comes back, so the
 * controller can drop per-channel state that described the dead
 * server, not the channel.
 */
class ControllerHooks
{
  public:
    virtual ~ControllerHooks() = default;

    /** The controller process dies (snapshot first, then wipe). */
    virtual void controllerCrash() = 0;

    /** A replacement controller comes up; @p coldRestart means no
     *  persisted snapshot is available. */
    virtual void controllerRestart(bool coldRestart) = 0;

    /** Control target @p target rebooted and lost its applied
     *  OOB state. */
    virtual void
    serverRestarted(telemetry::ClockControllable *target) = 0;
};

} // namespace polca::faults
