#include "faults/chaos.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace polca::faults {

namespace {

void
checkCount(const char *what, int count)
{
    if (count < 0)
        sim::fatal("ChaosConfig: negative ", what, " count");
}

void
checkRange(const char *what, sim::Tick min, sim::Tick max)
{
    if (min <= 0 || max < min) {
        sim::fatal("ChaosConfig: ", what, " duration range [", min,
                   ", ", max, "] is not a valid range");
    }
}

void
checkProbability(const char *what, double p)
{
    if (p < 0.0 || p > 1.0) {
        sim::fatal("ChaosConfig: ", what, " probability ", p,
                   " outside [0,1]");
    }
}

/** Event-count ceiling after intensity scaling. */
int
scaledMax(int countMax, double intensity)
{
    return static_cast<int>(
        std::lround(static_cast<double>(countMax) * intensity));
}

/** One window of length drawn in [min, max], clamped into the run,
 *  placed uniformly.  Never returns a degenerate window. */
std::pair<sim::Tick, sim::Tick>
drawWindow(sim::Rng &rng, sim::Tick durationMin, sim::Tick durationMax,
           sim::Tick runDuration)
{
    sim::Tick length = rng.uniformInt(durationMin, durationMax);
    length = std::clamp<sim::Tick>(length, 1, runDuration);
    sim::Tick latestStart = runDuration - length;
    sim::Tick start =
        latestStart > 0 ? rng.uniformInt(0, latestStart) : 0;
    return {start, length};
}

/** Sort windows by start and drop any that overlaps its kept
 *  predecessor (earliest draw wins). */
template <typename T>
void
dropOverlaps(std::vector<T> &windows)
{
    std::sort(windows.begin(), windows.end(),
              [](const T &a, const T &b) { return a.first < b.first; });
    std::vector<T> kept;
    sim::Tick busyUntil = 0;
    for (const T &w : windows) {
        if (!kept.empty() && w.first < busyUntil)
            continue;
        busyUntil = w.first + w.second;
        kept.push_back(w);
    }
    windows = std::move(kept);
}

} // namespace

void
ChaosConfig::validate() const
{
    if (intensity < 0.0)
        sim::fatal("ChaosConfig: negative intensity");
    checkCount("blackout", blackoutCountMax);
    checkRange("blackout", blackoutDurationMin, blackoutDurationMax);
    checkProbability("bursty", burstyProbability);
    checkCount("sensor-fault", sensorFaultCountMax);
    checkRange("sensor-fault", sensorFaultDurationMin,
               sensorFaultDurationMax);
    if (sensorBiasWeight < 0.0 || sensorNoiseWeight < 0.0 ||
        sensorStuckWeight < 0.0) {
        sim::fatal("ChaosConfig: negative sensor mode weight");
    }
    if (sensorBiasWeight + sensorNoiseWeight + sensorStuckWeight <=
        0.0) {
        sim::fatal("ChaosConfig: sensor mode weights sum to zero");
    }
    if (sensorBiasMaxWatts < 0.0 || sensorNoiseMaxStddevWatts < 0.0)
        sim::fatal("ChaosConfig: negative sensor magnitude bound");
    checkCount("oob-outage", oobOutageCountMax);
    checkRange("oob-outage", oobOutageDurationMin,
               oobOutageDurationMax);
    checkProbability("oob-blackout-correlation",
                     oobBlackoutCorrelation);
    checkCount("crash", crashCountMax);
    checkRange("crash-downtime", crashDowntimeMin, crashDowntimeMax);
    checkCount("controller-crash", controllerCrashCountMax);
    checkRange("controller-downtime", controllerDowntimeMin,
               controllerDowntimeMax);
    checkProbability("controller-cold-restart",
                     controllerColdRestartProbability);
}

FaultPlan
generateChaosPlan(const ChaosConfig &config, sim::Tick duration,
                  int numServers, sim::Rng &rng)
{
    config.validate();
    if (duration <= 0)
        sim::fatal("generateChaosPlan: non-positive duration");

    FaultPlan plan;
    double intensity = config.intensity;

    // Draw order is part of the determinism contract: blackouts,
    // bursty loss, sensor faults, OOB outages, server crashes,
    // controller crashes.  Reordering would silently change every
    // seeded campaign.

    std::vector<std::pair<sim::Tick, sim::Tick>> windows;
    int count = scaledMax(config.blackoutCountMax, intensity);
    count = count > 0 ? static_cast<int>(rng.uniformInt(0, count)) : 0;
    for (int i = 0; i < count; ++i) {
        windows.push_back(drawWindow(rng, config.blackoutDurationMin,
                                     config.blackoutDurationMax,
                                     duration));
    }
    dropOverlaps(windows);
    for (const auto &[start, length] : windows)
        plan.blackouts.push_back({start, length});

    if (intensity > 0.0 && rng.bernoulli(config.burstyProbability)) {
        plan.burstyLoss.enabled = true;
        plan.burstyLoss.enterBurstProbability = 0.01;
        plan.burstyLoss.exitBurstProbability = 0.1;
        plan.burstyLoss.goodLossProbability = 0.01;
        plan.burstyLoss.burstLossProbability = 0.95;
    }

    count = scaledMax(config.sensorFaultCountMax, intensity);
    count = count > 0 ? static_cast<int>(rng.uniformInt(0, count)) : 0;
    const std::vector<double> modeWeights = {config.sensorBiasWeight,
                                             config.sensorNoiseWeight,
                                             config.sensorStuckWeight};
    for (int i = 0; i < count; ++i) {
        auto [start, length] =
            drawWindow(rng, config.sensorFaultDurationMin,
                       config.sensorFaultDurationMax, duration);
        SensorFault fault;
        fault.start = start;
        fault.duration = length;
        switch (rng.weightedIndex(modeWeights)) {
          case 0:
            fault.mode = SensorFaultMode::Bias;
            fault.biasWatts = -rng.uniform(0.0,
                                           config.sensorBiasMaxWatts);
            break;
          case 1:
            fault.mode = SensorFaultMode::Noise;
            fault.noiseStddevWatts =
                rng.uniform(0.0, config.sensorNoiseMaxStddevWatts);
            break;
          default:
            fault.mode = SensorFaultMode::StuckAtLast;
            break;
        }
        plan.sensorFaults.push_back(fault);
    }

    count = scaledMax(config.oobOutageCountMax, intensity);
    count = count > 0 ? static_cast<int>(rng.uniformInt(0, count)) : 0;
    for (int i = 0; i < count; ++i) {
        auto [start, length] =
            drawWindow(rng, config.oobOutageDurationMin,
                       config.oobOutageDurationMax, duration);
        // Common-cause failure: co-start the command outage with one
        // of the drawn telemetry blackouts.
        if (!plan.blackouts.empty() &&
            rng.bernoulli(config.oobBlackoutCorrelation)) {
            std::size_t pick = static_cast<std::size_t>(rng.uniformInt(
                0,
                static_cast<std::int64_t>(plan.blackouts.size()) - 1));
            start = plan.blackouts[pick].start;
            length = std::min<sim::Tick>(length, duration - start);
        }
        plan.oobOutages.push_back({start, std::max<sim::Tick>(
                                              length, 1)});
    }

    count = scaledMax(config.crashCountMax, intensity);
    count = count > 0 ? static_cast<int>(rng.uniformInt(0, count)) : 0;
    std::vector<ServerCrash> crashes;
    for (int i = 0; i < count && numServers > 0; ++i) {
        auto [at, downtime] =
            drawWindow(rng, config.crashDowntimeMin,
                       config.crashDowntimeMax, duration);
        ServerCrash crash;
        crash.at = at;
        crash.downtime = downtime;
        crash.serverIndex =
            static_cast<int>(rng.uniformInt(0, numServers - 1));
        crashes.push_back(crash);
    }
    // A server must not crash while already down: sort by (server,
    // time) and drop draws that land inside a kept downtime.
    std::sort(crashes.begin(), crashes.end(),
              [](const ServerCrash &a, const ServerCrash &b) {
                  return a.serverIndex != b.serverIndex
                             ? a.serverIndex < b.serverIndex
                             : a.at < b.at;
              });
    int lastServer = -1;
    sim::Tick busyUntil = 0;
    for (const ServerCrash &crash : crashes) {
        if (crash.serverIndex == lastServer && crash.at < busyUntil)
            continue;
        lastServer = crash.serverIndex;
        busyUntil = crash.at + crash.downtime;
        plan.crashes.push_back(crash);
    }

    count = scaledMax(config.controllerCrashCountMax, intensity);
    count = count > 0 ? static_cast<int>(rng.uniformInt(0, count)) : 0;
    std::vector<std::pair<sim::Tick, sim::Tick>> controllerWindows;
    std::vector<bool> cold;
    for (int i = 0; i < count; ++i) {
        controllerWindows.push_back(
            drawWindow(rng, config.controllerDowntimeMin,
                       config.controllerDowntimeMax, duration));
        cold.push_back(
            rng.bernoulli(config.controllerColdRestartProbability));
    }
    // Keep cold/warm attached to their windows through the overlap
    // filter by filtering pairs manually.
    std::vector<std::size_t> order(controllerWindows.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return controllerWindows[a].first <
                      controllerWindows[b].first;
              });
    busyUntil = 0;
    bool first = true;
    for (std::size_t index : order) {
        const auto &[at, downtime] = controllerWindows[index];
        if (!first && at < busyUntil)
            continue;
        first = false;
        busyUntil = at + downtime;
        plan.controllerCrashes.push_back({at, downtime, cold[index]});
    }

    plan.validate();
    return plan;
}

} // namespace polca::faults
