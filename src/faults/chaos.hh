/**
 * @file
 * Deterministic, seeded chaos engine over the fault space.
 *
 * Hand-authored FaultPlans exercise one failure at a time; the
 * safety argument the paper makes (Section 3.3's hostile control
 * paths, Section 6.3's guardrails) needs the *combinations*: a
 * blackout that lands during an OOB outage, a controller crash
 * while half the row is rebooting.  A ChaosConfig describes ranges
 * over the whole fault space; generateChaosPlan() draws one
 * concrete FaultPlan from it using a caller-supplied sim::Rng, so a
 * chaos campaign replays bit-identically under a fixed seed and a
 * single `[sweep]` axis can scale its intensity.
 */

#pragma once

#include "faults/fault_plan.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace polca::faults {

/**
 * Typed fault-space bounds for plan generation.  Counts are drawn
 * uniformly in [0, round(max * intensity)]; window lengths uniformly
 * in [min, max] (clamped to the run).  All fields are schema-bound
 * ([chaos] in a scenario file), so every knob is sweepable.
 */
struct ChaosConfig
{
    /** Master switch: when false the experiment harness ignores the
     *  rest of the config. */
    bool enabled = false;

    /** Scales every event-count ceiling (0 disables all randomized
     *  faults; 2.0 doubles the ceilings).  The natural [sweep]
     *  axis. */
    double intensity = 1.0;

    /** @name Telemetry blackouts */
    /** @{ */
    int blackoutCountMax = 2;
    sim::Tick blackoutDurationMin = sim::secondsToTicks(120);
    sim::Tick blackoutDurationMax = sim::secondsToTicks(900);
    /** @} */

    /** Probability the Gilbert–Elliott bursty-loss channel is
     *  enabled for the run (parameters follow the "bursty"
     *  preset). */
    double burstyProbability = 0.25;

    /** @name Sensor corruption windows */
    /** @{ */
    int sensorFaultCountMax = 2;
    sim::Tick sensorFaultDurationMin = sim::secondsToTicks(300);
    sim::Tick sensorFaultDurationMax = sim::secondsToTicks(1800);
    /** Mode mix: relative weights of bias / noise / stuck-at-last. */
    double sensorBiasWeight = 1.0;
    double sensorNoiseWeight = 1.0;
    double sensorStuckWeight = 1.0;
    /** Bias drawn in [-max, 0]: under-reporting is the unsafe lie. */
    double sensorBiasMaxWatts = 30000.0;
    double sensorNoiseMaxStddevWatts = 4000.0;
    /** @} */

    /** @name Correlated OOB command outages */
    /** @{ */
    int oobOutageCountMax = 1;
    sim::Tick oobOutageDurationMin = sim::secondsToTicks(300);
    sim::Tick oobOutageDurationMax = sim::secondsToTicks(1800);
    /** Probability an outage co-starts with a drawn blackout (the
     *  common-cause case: one dead BMC aggregator takes out both
     *  telemetry and the command path). */
    double oobBlackoutCorrelation = 0.5;
    /** @} */

    /** @name Server crash/restart waves */
    /** @{ */
    int crashCountMax = 3;
    sim::Tick crashDowntimeMin = sim::secondsToTicks(60);
    sim::Tick crashDowntimeMax = sim::secondsToTicks(600);
    /** @} */

    /** @name Controller crash/restart */
    /** @{ */
    int controllerCrashCountMax = 1;
    sim::Tick controllerDowntimeMin = sim::secondsToTicks(60);
    sim::Tick controllerDowntimeMax = sim::secondsToTicks(600);
    /** Probability a restart is cold (no snapshot to rehydrate). */
    double controllerColdRestartProbability = 0.5;
    /** @} */

    /** Fatal() on out-of-range fields (negative counts, inverted
     *  min/max ranges, probabilities outside [0,1]). */
    void validate() const;
};

/**
 * Draw one concrete FaultPlan from @p config for a run of
 * @p duration over @p numServers servers, consuming randomness only
 * from @p rng.  The returned plan always passes
 * FaultPlan::validate(): windows fit inside the run, blackout and
 * controller-crash windows never overlap (overlapping draws are
 * dropped, earliest wins), and crashes always restart.
 */
FaultPlan generateChaosPlan(const ChaosConfig &config,
                            sim::Tick duration, int numServers,
                            sim::Rng &rng);

} // namespace polca::faults
