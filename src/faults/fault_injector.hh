/**
 * @file
 * Executes a FaultPlan against a running simulation.
 *
 * The injector composes every telemetry-facing fault into one
 * RowManager fault hook (blackouts, then bursty loss, then sensor
 * corruption — a reading must survive all three to be delivered)
 * and schedules the time-triggered faults (OOB outages, server
 * crash/restarts) on the event queue at start().  All stochastic
 * behavior draws from the injector's own forked Rng, so a scenario
 * replays bit-identically under a fixed seed and perturbs no other
 * component's stream.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/inference_server.hh"
#include "faults/controller_hooks.hh"
#include "faults/fault_plan.hh"
#include "obs/observability.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "telemetry/row_manager.hh"
#include "telemetry/smbpbi.hh"

namespace polca::faults {

/**
 * Attaches a FaultPlan's effects to telemetry, OOB channels, and
 * servers.  Attach everything first, then start() once; the injector
 * must outlive the simulation run.
 */
class FaultInjector
{
  public:
    FaultInjector(sim::Simulation &sim, FaultPlan plan, sim::Rng rng);

    /** Install the reading fault hook on @p rowManager (replaces any
     *  hook already installed there). */
    void attachTelemetry(telemetry::RowManager &rowManager);

    /** Channels affected by correlated OOB outages. */
    void
    attachChannels(std::vector<telemetry::SmbpbiController *> channels);

    /** Servers subject to crash/restart events; ServerCrash
     *  indices refer to positions in this list. */
    void attachServers(std::vector<cluster::InferenceServer *> servers);

    /**
     * Controller subject to ControllerCrash events; also notified
     * when a crashed server restarts (so it can reset per-channel
     * state that described the dead server).  Without an attached
     * controller, ControllerCrash events are skipped (there is
     * nothing to crash in an unmanaged run).
     */
    void attachController(ControllerHooks *controller);

    /**
     * Register injection counters and fault-window trace spans with
     * @p obs.  Call before start(): the planned windows (blackouts,
     * OOB outages, sensor faults, crash downtimes) are known a
     * priori, so start() records them as complete spans up front.
     */
    void attachObservability(obs::Observability *obs);

    /** Schedule all time-triggered faults.  Call once, after the
     *  attach calls, before (or at) the start of the run. */
    void start();

    const FaultPlan &plan() const { return plan_; }

    /** @name Statistics */
    /** @{ */
    /** Readings suppressed by blackout windows. */
    std::uint64_t blackedOutReadings() const { return blackedOut_; }

    /** Readings lost to the Gilbert–Elliott channel. */
    std::uint64_t burstDroppedReadings() const { return burstDropped_; }

    /** Readings delivered with a corrupted value. */
    std::uint64_t corruptedReadings() const { return corrupted_; }

    /** Crash events executed so far. */
    std::uint64_t crashesInjected() const { return crashesInjected_; }

    /** Controller crash events executed so far. */
    std::uint64_t controllerCrashesInjected() const
    {
        return controllerCrashesInjected_;
    }

    /** @return true while the loss channel is in its burst state. */
    bool inBurst() const { return inBurst_; }
    /** @} */

  private:
    std::optional<double> filterReading(sim::Tick now, double watts);
    void setOutage(bool active);

    sim::Simulation &sim_;
    FaultPlan plan_;
    sim::Rng rng_;
    std::vector<telemetry::SmbpbiController *> channels_;
    std::vector<cluster::InferenceServer *> servers_;
    ControllerHooks *controller_ = nullptr;
    bool started_ = false;

    bool inBurst_ = false;
    double lastGoodWatts_ = 0.0;
    bool haveLastGood_ = false;

    std::uint64_t blackedOut_ = 0;
    std::uint64_t burstDropped_ = 0;
    std::uint64_t corrupted_ = 0;
    std::uint64_t crashesInjected_ = 0;
    std::uint64_t controllerCrashesInjected_ = 0;

    obs::TraceRecorder *trace_ = nullptr;
    obs::Counter *blackedOutStat_ = nullptr;
    obs::Counter *burstDroppedStat_ = nullptr;
    obs::Counter *corruptedStat_ = nullptr;
    obs::Counter *crashStat_ = nullptr;
    obs::Counter *controllerCrashStat_ = nullptr;
};

} // namespace polca::faults

