/**
 * @file
 * Declarative fault scenarios for the control plane POLCA rides on.
 *
 * The paper's telemetry and actuation paths are explicitly hostile:
 * 40 s capping latency, commands that fail "without signaling
 * completion or errors", and 2 s row telemetry that "may sometimes
 * fail" (Section 3.3).  A FaultPlan captures a concrete instance of
 * that hostility — blackout windows, bursty reading loss, sensor
 * corruption, correlated SMBPBI outages, server crashes — as plain
 * data that faults::FaultInjector executes against a running
 * simulation, deterministically under a fixed sim::Rng seed.
 */

#pragma once

#include <string>
#include <vector>

#include "sim/types.hh"

namespace polca::faults {

/** Telemetry goes completely dark for [start, start + duration). */
struct BlackoutWindow
{
    sim::Tick start = 0;
    sim::Tick duration = 0;
};

/**
 * Bursty reading loss: a Gilbert–Elliott two-state channel advanced
 * once per scheduled reading.  Unlike the i.i.d. dropout the row
 * manager models natively, losses cluster into streaks — the case
 * that actually starves a telemetry-driven controller.
 */
struct BurstyLoss
{
    bool enabled = false;
    double enterBurstProbability = 0.0;  ///< good -> burst, per reading
    double exitBurstProbability = 1.0;   ///< burst -> good, per reading
    double goodLossProbability = 0.0;    ///< loss while in good state
    double burstLossProbability = 1.0;   ///< loss while in burst state
};

/** How a corrupted sensor mangles the reading it reports. */
enum class SensorFaultMode
{
    Bias,         ///< constant additive offset
    Noise,        ///< zero-mean Gaussian noise
    StuckAtLast,  ///< repeats the last pre-fault value
};

const char *toString(SensorFaultMode mode);

/** Sensor corruption active over [start, start + duration). */
struct SensorFault
{
    sim::Tick start = 0;
    sim::Tick duration = 0;
    SensorFaultMode mode = SensorFaultMode::Bias;
    double biasWatts = 0.0;         ///< Bias mode offset
    double noiseStddevWatts = 0.0;  ///< Noise mode sigma
};

/**
 * Correlated OOB outage over [start, start + duration): every
 * attached SMBPBI channel silently swallows capping commands (one
 * failing BMC aggregator takes out a whole row's command path).
 * The power-brake hardware line is unaffected.
 */
struct OobOutage
{
    sim::Tick start = 0;
    sim::Tick duration = 0;
};

/** One server crash/restart event. */
struct ServerCrash
{
    sim::Tick at = 0;
    sim::Tick downtime = 0;  ///< restore at `at + downtime`
    int serverIndex = 0;     ///< index into the attached server list

    /** The server never restarts (deliberately dark for the rest of
     *  the run).  A crash with no restart must be marked permanent
     *  explicitly — and a permanent crash must leave downtime at 0 —
     *  or the plan is rejected as degenerate. */
    bool permanent = false;
};

/**
 * The power-management controller process dies at `at` and a
 * replacement comes up `downtime` later.  A warm restart rehydrates
 * from the controller's persisted snapshot (resumes from last-known
 * caps); a cold restart has no snapshot and must start blind.
 */
struct ControllerCrash
{
    sim::Tick at = 0;
    sim::Tick downtime = 0;  ///< replacement up at `at + downtime`
    bool coldRestart = false;  ///< no snapshot to rehydrate from
};

/** A complete scenario. */
struct FaultPlan
{
    std::vector<BlackoutWindow> blackouts;
    BurstyLoss burstyLoss;
    std::vector<SensorFault> sensorFaults;
    std::vector<OobOutage> oobOutages;
    std::vector<ServerCrash> crashes;
    std::vector<ControllerCrash> controllerCrashes;

    /** @return true when the plan injects nothing. */
    bool empty() const;

    /**
     * Structural problems that make the plan degenerate: windows of
     * zero or negative length, overlapping blackout windows,
     * overlapping downtime on one server, overlapping controller
     * crashes, a crash with no restart that is not marked permanent,
     * probabilities outside [0,1].  Empty means well-formed.  The
     * scenario layer re-runs these checks with line-precise
     * diagnostics; this form serves programmatic plan builders.
     */
    std::vector<std::string> problems() const;

    /** Fatal() on the first problems() entry. */
    void validate() const;
};

/**
 * Canned scenarios, scaled to a run of @p duration, for the CLI,
 * the fault_scenarios example, and apples-to-apples comparisons:
 *
 *  - "none":          empty plan
 *  - "blackout":      telemetry dark for 15 min starting at 25 %
 *                     of the run
 *  - "bursty":        Gilbert–Elliott loss (mean burst ~10 readings,
 *                     ~10 % of time in burst)
 *  - "flaky-sensor":  low-biased then stuck-at-last sensor windows
 *                     (a low-reading sensor makes POLCA think the
 *                     row is safe while it is not)
 *  - "oob-outage":    all SMBPBI channels dead for 20 min mid-run
 *  - "crashes":       a rolling wave of server crash/restarts
 *
 * @p numServers bounds the crash scenario's server indices.
 */
FaultPlan scenarioByName(const std::string &name, sim::Tick duration,
                         int numServers);

/** Names accepted by scenarioByName, for usage text. */
const std::vector<std::string> &scenarioNames();

} // namespace polca::faults

