#include "llm/counters.hh"

#include <algorithm>

#include "power/gpu_spec.hh"

namespace polca::llm {

std::vector<std::string>
counterNames()
{
    return {"Power", "GPU Util", "Memory Util", "SM Activity",
            "Tensor Activity", "PCIe TX", "PCIe RX"};
}

std::vector<double>
counterValues(const CounterSample &sample)
{
    return {sample.powerWatts, sample.gpuUtilization,
            sample.memoryUtilization, sample.smActivity,
            sample.tensorActivity, sample.pcieTxRate, sample.pcieRxRate};
}

CounterSynthesizer::CounterSynthesizer(const ModelSpec &model,
                                       sim::Rng rng)
    : phases_(model), rng_(rng)
{
}

CounterSample
CounterSynthesizer::sample(Phase phase, const InferenceConfig &config)
{
    const power::GpuSpec spec = power::GpuSpec::a100_80gb();
    CounterSample out;

    if (phase == Phase::Prompt) {
        // A single latent "layer intensity" drives compute counters
        // up and the memory counter down; power follows the same
        // latent, yielding strong +/- correlations (Fig 7, left).
        double latent = rng_.normal(0.0, 1.0);
        out.smActivity = std::clamp(
            0.88 + 0.05 * latent + rng_.normal(0.0, 0.03), 0.0, 1.0);
        out.tensorActivity = std::clamp(
            0.82 + 0.07 * latent + rng_.normal(0.0, 0.035), 0.0, 1.0);
        out.memoryUtilization = std::clamp(
            0.42 - 0.14 * latent + rng_.normal(0.0, 0.045), 0.0, 1.0);
        out.gpuUtilization =
            std::clamp(0.97 + rng_.normal(0.0, 0.01), 0.0, 1.0);

        power::GpuActivity activity = phases_.promptActivity(config);
        double base = spec.idleWatts +
            activity.compute * spec.computeDynWatts +
            activity.memory * spec.memoryDynWatts;
        out.powerWatts = base + 20.0 * latent + rng_.normal(0.0, 8.0);

        out.pcieTxRate =
            std::clamp(0.06 + rng_.normal(0.0, 0.02), 0.0, 1.0);
        out.pcieRxRate =
            std::clamp(0.08 + rng_.normal(0.0, 0.02), 0.0, 1.0);
    } else {
        // Token phase: low, independently-fluctuating counters
        // (Fig 7, right): no shared latent.
        out.smActivity =
            std::clamp(0.45 + rng_.normal(0.0, 0.08), 0.0, 1.0);
        out.tensorActivity =
            std::clamp(0.28 + rng_.normal(0.0, 0.08), 0.0, 1.0);
        out.memoryUtilization =
            std::clamp(0.85 + rng_.normal(0.0, 0.05), 0.0, 1.0);
        out.gpuUtilization =
            std::clamp(0.93 + rng_.normal(0.0, 0.03), 0.0, 1.0);

        power::GpuActivity activity = phases_.tokenActivity(config);
        double base = spec.idleWatts +
            activity.compute * spec.computeDynWatts +
            activity.memory * spec.memoryDynWatts;
        out.powerWatts = base + rng_.normal(0.0, 8.0);

        out.pcieTxRate =
            std::clamp(0.12 + rng_.normal(0.0, 0.04), 0.0, 1.0);
        out.pcieRxRate =
            std::clamp(0.10 + rng_.normal(0.0, 0.04), 0.0, 1.0);
    }
    return out;
}

} // namespace polca::llm
