/**
 * @file
 * Training-iteration power waveform model (Section 4.1).
 *
 * An LLM training iteration alternates computation-intensive phases
 * (forward, backward) with communication/synchronization phases where
 * GPU power dips.  The dip depth is model specific: the paper reports
 * troughs at ~75 % of TDP for RoBERTa, ~50 % for GPT-NeoX, and ~20 %
 * (idle) for Flan-T5 (Fig 4, Insight 2).
 */

#pragma once

#include <string>
#include <vector>

#include "llm/model_spec.hh"
#include "power/gpu_power_model.hh"
#include "sim/types.hh"

namespace polca::llm {

/**
 * Shape of one training iteration.  Fractions refer to the iteration
 * period at maximum clock; compute segments stretch when the clock
 * drops, the synchronization segment does not (it is network bound).
 */
struct TrainingSpec
{
    std::string modelName;

    /** Iteration period at maximum clock. */
    sim::Tick iterationPeriod;

    /** Phase fractions (sum to 1). */
    double forwardFraction = 0.30;
    double midDipFraction = 0.05;
    double backwardFraction = 0.45;
    double syncFraction = 0.20;

    /** GPU activity per phase. */
    power::GpuActivity computeActivity;  ///< forward/backward
    power::GpuActivity midDipActivity;   ///< fwd/bwd boundary dip
    power::GpuActivity syncActivity;     ///< end-of-iteration trough

    /**
     * Effective clock sensitivity of the forward/backward segments.
     * Below 1 because training frameworks overlap gradient
     * communication with computation, hiding part of a clock
     * slowdown (calibrated to Fig 5: ~22 % peak power for ~10 %
     * throughput at the 1.1 GHz lock).
     */
    double computeBoundFraction = 0.55;

    /**
     * Calibrated spec for one of the paper's fine-tuned models
     * (RoBERTa / GPT-NeoX-20B / Flan-T5-XXL); fatal() otherwise.
     */
    static TrainingSpec forModel(const std::string &model_name);
};

/**
 * Pure waveform queries over a TrainingSpec.
 */
class TrainingModel
{
  public:
    explicit TrainingModel(TrainingSpec spec);

    const TrainingSpec &spec() const { return spec_; }

    /** One executable segment of the iteration. */
    struct Segment
    {
        sim::Tick duration;
        power::GpuActivity activity;
        bool computeBound;   ///< stretches with clock slowdown
    };

    /**
     * Iteration segments with compute parts stretched by
     * @p computeSlowdown (>= 1).
     */
    std::vector<Segment> segments(double computeSlowdown) const;

    /** Iteration duration under @p computeSlowdown. */
    sim::Tick iterationDuration(double computeSlowdown) const;

    /**
     * Training throughput (iterations/s) relative to the unthrottled
     * rate, under @p computeSlowdown.
     */
    double relativeThroughput(double computeSlowdown) const;

    /** Activity at @p offset ticks into an iteration (max clock). */
    power::GpuActivity activityAt(sim::Tick offset) const;

  private:
    TrainingSpec spec_;
};

} // namespace polca::llm

