#include "llm/model_spec.hh"

#include <cmath>

#include "sim/logging.hh"

namespace polca::llm {

const char *
toString(Architecture architecture)
{
    switch (architecture) {
      case Architecture::Encoder:
        return "Encoder";
      case Architecture::Decoder:
        return "Decoder";
      case Architecture::EncoderDecoder:
        return "Encoder-Decoder";
    }
    return "?";
}

const char *
toString(Datatype datatype)
{
    switch (datatype) {
      case Datatype::FP32:
        return "FP32";
      case Datatype::FP16:
        return "FP16";
      case Datatype::INT8:
        return "INT8";
    }
    return "?";
}

double
ModelSpec::datatypeLatencyFactor(Datatype datatype)
{
    switch (datatype) {
      case Datatype::FP16:
        return 1.0;   // tensor cores, optimized kernels
      case Datatype::FP32:
        return 2.2;   // 2x footprint, no tensor-core path
      case Datatype::INT8:
        return 1.6;   // bitsandbytes dequant overhead (Sec 4.2)
    }
    return 1.0;
}

double
ModelSpec::datatypePowerFactor(Datatype datatype)
{
    switch (datatype) {
      case Datatype::FP16:
        return 1.0;   // highest peak: optimized tensor-core kernels
      case Datatype::FP32:
        return 0.92;
      case Datatype::INT8:
        return 0.88;
    }
    return 1.0;
}

int
ModelSpec::gpusForDatatype(Datatype datatype) const
{
    if (datatype == Datatype::FP16)
        return inferenceGpus;  // Table 3's configuration

    double bytesPerParam = datatype == Datatype::FP32 ? 4.0 : 1.0;
    double weightsGb = paramsBillions * bytesPerParam;
    // Workspace for activations and KV cache (the footnote in
    // Section 4.2: extra state can preclude fewer GPUs).
    constexpr double workspaceGb = 16.0;
    constexpr double gpuMemGb = 80.0;
    int gpus = static_cast<int>(
        std::ceil((weightsGb + workspaceGb) / gpuMemGb));
    return gpus < 1 ? 1 : gpus;
}

namespace {

ModelSpec
make(std::string name, Architecture arch, double paramsB, int gpus,
     bool trainable, double token_time_ms, double prompt_base,
     double prompt_max, double token_compute, double token_cf)
{
    ModelSpec spec;
    spec.name = std::move(name);
    spec.architecture = arch;
    spec.paramsBillions = paramsB;
    spec.inferenceGpus = gpus;
    spec.trainable = trainable;
    // Prompt time: 2*params FLOPs per token over tensor-parallel
    // GPUs; calibrated so BLOOM-176B processes an 8K prompt in ~3 s.
    spec.promptMsPerKtoken = 16.0 * paramsB / gpus;
    spec.tokenTimeMs = token_time_ms;
    spec.tokenBatchFactor = 0.06;
    spec.promptComputeBase = prompt_base;
    spec.promptComputeMax = prompt_max;
    spec.promptMemActivity = 0.50;
    spec.tokenComputeBase = token_compute;
    spec.tokenMemActivity = 0.90;
    spec.promptComputeBoundFraction = 0.85;
    spec.tokenComputeBoundFraction = token_cf;
    return spec;
}

} // namespace

ModelCatalog::ModelCatalog()
{
    using A = Architecture;
    // Table 3 entries.  Token compute-bound fractions give the Fig 10a
    // ordering: GPT-NeoX nearly insensitive to clock, BLOOM ~5 % loss
    // at ~13 % peak power reduction.
    models_.push_back(make("RoBERTa", A::Encoder, 0.355, 1, true,
                           5.0, 0.60, 0.90, 0.30, 0.50));
    models_.push_back(make("Llama2-13B", A::Decoder, 13.0, 1, false,
                           18.0, 0.66, 0.98, 0.30, 0.10));
    models_.push_back(make("Llama2-70B", A::Decoder, 70.0, 4, false,
                           35.0, 0.72, 1.06, 0.36, 0.20));
    models_.push_back(make("GPT-NeoX-20B", A::Decoder, 20.0, 2, true,
                           22.0, 0.68, 1.00, 0.31, 0.05));
    models_.push_back(make("OPT-30B", A::Decoder, 30.0, 4, false,
                           28.0, 0.70, 1.02, 0.33, 0.15));
    models_.push_back(make("BLOOM-176B", A::Decoder, 176.0, 8, false,
                           48.0, 0.75, 1.10, 0.35, 0.22));
    models_.push_back(make("Flan-T5-XXL", A::EncoderDecoder, 11.0, 1,
                           true, 20.0, 0.66, 0.98, 0.30, 0.12));
}

const ModelSpec &
ModelCatalog::byName(const std::string &name) const
{
    for (const auto &model : models_) {
        if (model.name == name)
            return model;
    }
    sim::fatal("ModelCatalog: unknown model '", name, "'");
}

bool
ModelCatalog::contains(const std::string &name) const
{
    for (const auto &model : models_) {
        if (model.name == name)
            return true;
    }
    return false;
}

std::vector<std::string>
ModelCatalog::inferenceModelNames() const
{
    // The five generative models of Fig 6/8.
    return {"Flan-T5-XXL", "GPT-NeoX-20B", "OPT-30B", "Llama2-70B",
            "BLOOM-176B"};
}

std::vector<std::string>
ModelCatalog::trainingModelNames() const
{
    // The three fine-tuned models of Fig 4/5.
    return {"RoBERTa", "GPT-NeoX-20B", "Flan-T5-XXL"};
}

} // namespace polca::llm
