/**
 * @file
 * Adapters turning the inference and training phase models into
 * executable WorkSegment lists.
 */

#pragma once

#include <vector>

#include "llm/executor.hh"
#include "llm/phase_model.hh"
#include "llm/training_model.hh"

namespace polca::llm {

/** Prompt + token segments of one inference request. */
std::vector<WorkSegment>
inferenceSegments(const PhaseModel &model, const InferenceConfig &config);

/** Forward / dip / backward / sync segments of one training
 *  iteration. */
std::vector<WorkSegment>
trainingIterationSegments(const TrainingModel &model);

} // namespace polca::llm

