/**
 * @file
 * GPU performance-counter synthesis for the correlation study of
 * Figure 7.  DCGM-style counters are generated per sample with the
 * phase-dependent coupling the paper observes: during prompt phases,
 * power moves with SM/tensor activity and against memory activity;
 * during token phases the counters fluctuate independently.
 */

#pragma once

#include <string>
#include <vector>

#include "llm/phase_model.hh"
#include "sim/random.hh"

namespace polca::llm {

/** One DCGM-style counter sample (all utilizations in [0,1]). */
struct CounterSample
{
    double powerWatts;
    double gpuUtilization;
    double memoryUtilization;
    double smActivity;
    double tensorActivity;
    double pcieTxRate;      ///< normalized to link peak
    double pcieRxRate;
};

/** Counter names in Figure 7's order. */
std::vector<std::string> counterNames();

/** Flatten a sample into counterNames() order. */
std::vector<double> counterValues(const CounterSample &sample);

/**
 * Generates counter samples for a model running a given phase.
 * Deterministic for a given Rng seed.
 */
class CounterSynthesizer
{
  public:
    CounterSynthesizer(const ModelSpec &model, sim::Rng rng);

    /**
     * Draw the next sample for @p phase under @p config.  The power
     * value is derived from the same latent activity that drives the
     * SM/tensor counters, which is what creates the prompt-phase
     * correlation structure.
     */
    CounterSample sample(Phase phase, const InferenceConfig &config);

  private:
    PhaseModel phases_;
    sim::Rng rng_;
};

} // namespace polca::llm

