#include "llm/training_model.hh"

#include <cmath>

#include "sim/logging.hh"

namespace polca::llm {

TrainingSpec
TrainingSpec::forModel(const std::string &model_name)
{
    TrainingSpec spec;
    spec.modelName = model_name;
    // Forward/backward activity reaches or exceeds TDP for the larger
    // models (Insight 1); RoBERTa stays below TDP (Fig 4).
    if (model_name == "RoBERTa") {
        spec.iterationPeriod = sim::secondsToTicks(1.0);
        spec.computeActivity = {0.88, 0.50};   // ~93 % TDP peak
        spec.midDipActivity = {0.72, 0.45};
        spec.syncActivity = {0.66, 0.40};      // ~75 % TDP trough
    } else if (model_name == "GPT-NeoX-20B") {
        spec.iterationPeriod = sim::secondsToTicks(2.1);
        spec.computeActivity = {1.03, 0.55};   // ~105 % TDP peak
        spec.midDipActivity = {0.60, 0.45};
        spec.syncActivity = {0.33, 0.30};      // ~50 % TDP trough
    } else if (model_name == "Flan-T5-XXL") {
        spec.iterationPeriod = sim::secondsToTicks(3.9);
        spec.computeActivity = {1.05, 0.55};   // ~106 % TDP peak
        spec.midDipActivity = {0.55, 0.40};
        spec.syncActivity = {0.0, 0.0};        // idle trough (~20 %)
    } else {
        sim::fatal("TrainingSpec: no training calibration for '",
                   model_name, "'");
    }
    return spec;
}

TrainingModel::TrainingModel(TrainingSpec spec)
    : spec_(std::move(spec))
{
    double total = spec_.forwardFraction + spec_.midDipFraction +
        spec_.backwardFraction + spec_.syncFraction;
    if (std::abs(total - 1.0) > 1e-9)
        sim::fatal("TrainingModel: phase fractions sum to ", total);
    if (spec_.iterationPeriod <= 0)
        sim::fatal("TrainingModel: non-positive iteration period");
}

std::vector<TrainingModel::Segment>
TrainingModel::segments(double computeSlowdown) const
{
    if (computeSlowdown < 1.0) {
        sim::panic("TrainingModel: slowdown ", computeSlowdown,
                   " below 1");
    }
    auto period = static_cast<double>(spec_.iterationPeriod);
    auto stretch = [&](double fraction, bool compute) {
        double d = period * fraction * (compute ? computeSlowdown : 1.0);
        return static_cast<sim::Tick>(d);
    };
    return {
        {stretch(spec_.forwardFraction, true), spec_.computeActivity,
         true},
        {stretch(spec_.midDipFraction, false), spec_.midDipActivity,
         false},
        {stretch(spec_.backwardFraction, true), spec_.computeActivity,
         true},
        {stretch(spec_.syncFraction, false), spec_.syncActivity,
         false},
    };
}

sim::Tick
TrainingModel::iterationDuration(double computeSlowdown) const
{
    sim::Tick total = 0;
    for (const auto &segment : segments(computeSlowdown))
        total += segment.duration;
    return total;
}

double
TrainingModel::relativeThroughput(double computeSlowdown) const
{
    return static_cast<double>(iterationDuration(1.0)) /
        static_cast<double>(iterationDuration(computeSlowdown));
}

power::GpuActivity
TrainingModel::activityAt(sim::Tick offset) const
{
    sim::Tick wrapped = offset % spec_.iterationPeriod;
    sim::Tick cursor = 0;
    for (const auto &segment : segments(1.0)) {
        cursor += segment.duration;
        if (wrapped < cursor)
            return segment.activity;
    }
    return spec_.syncActivity;
}

} // namespace polca::llm
