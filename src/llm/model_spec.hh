/**
 * @file
 * The LLM catalog of Table 3 plus the per-model performance/power
 * coefficients that drive the inference and training phase models.
 *
 * Coefficients are calibrated against the paper's published shapes:
 * per-token latencies consistent with Fig 8f, prompt-phase peaks that
 * reach/exceed TDP for large inputs (Fig 8a), model-dependent
 * frequency sensitivity (Fig 10a: GPT-NeoX ~0 % loss, BLOOM ~5 % loss
 * at ~13 % peak power reduction), and training troughs at 75/50/20 %
 * of TDP (Fig 4).
 */

#pragma once

#include <string>
#include <vector>

namespace polca::llm {

/** Transformer architecture classes of Section 2. */
enum class Architecture
{
    Encoder,        ///< e.g. RoBERTa: understanding only
    Decoder,        ///< e.g. GPT/BLOOM/Llama2/OPT: generative
    EncoderDecoder, ///< e.g. Flan-T5
};

/** Weight datatypes studied in Section 4.2 (Insight 6). */
enum class Datatype
{
    FP32,
    FP16,
    INT8,
};

const char *toString(Architecture architecture);
const char *toString(Datatype datatype);

/**
 * One LLM's static description and model coefficients.
 *
 * Latency model (at maximum SM clock, FP16):
 *  - prompt phase: promptMsPerKtoken * (input * batch) / 1000,
 *    divided across the tensor-parallel GPUs already in the constant;
 *  - token phase: tokenTimeMs per generated token, plus a small
 *    per-batch increment (batch raises token-phase compute).
 *
 * Power model: activity factors handed to power::GpuPowerModel.
 * Prompt compute activity rises with log2(input*batch) and saturates
 * at promptComputeMax (so peaks grow with input size, Fig 8a); token
 * activity is low-compute / high-memory (Insight 4).
 */
struct ModelSpec
{
    std::string name;
    Architecture architecture;
    double paramsBillions;

    /** Tensor-parallel GPUs used for FP16 inference (Table 3). */
    int inferenceGpus;

    /** True for the models the paper also fine-tunes (Table 3: the
     *  non-starred entries). */
    bool trainable;

    /** @name Latency coefficients (FP16, max clock) */
    /** @{ */
    double promptMsPerKtoken;   ///< prompt ms per 1000 input tokens
    double tokenTimeMs;         ///< ms per generated token, batch 1
    double tokenBatchFactor;    ///< fractional token-time increase
                                ///< per doubling of batch size
    /** @} */

    /** @name Power activity coefficients */
    /** @{ */
    double promptComputeBase;   ///< compute activity at 256-token input
    double promptComputeMax;    ///< saturated compute activity
    double promptMemActivity;   ///< memory activity during prompt
    double tokenComputeBase;    ///< compute activity during token phase
    double tokenMemActivity;    ///< memory activity during token phase
    /** @} */

    /** @name Frequency sensitivity (Insight 7) */
    /** @{ */
    double promptComputeBoundFraction;  ///< prompt: ~compute bound
    double tokenComputeBoundFraction;   ///< token: ~memory bound
    /** @} */

    /** GPUs required to hold the weights at @p datatype. */
    int gpusForDatatype(Datatype datatype) const;

    /** Latency multiplier of @p datatype relative to FP16 (Sec 4.2:
     *  FP32 and INT8 are slower than FP16 on A100). */
    static double datatypeLatencyFactor(Datatype datatype);

    /** Peak-activity multiplier of @p datatype relative to FP16
     *  (FP16 tensor-core kernels draw the highest peak power). */
    static double datatypePowerFactor(Datatype datatype);
};

/**
 * The models characterized in the paper (Table 3).
 */
class ModelCatalog
{
  public:
    /** Build the Table 3 catalog. */
    ModelCatalog();

    const std::vector<ModelSpec> &models() const { return models_; }

    /** Look up by name; fatal() if absent. */
    const ModelSpec &byName(const std::string &name) const;

    /** @return true if @p name is in the catalog. */
    bool contains(const std::string &name) const;

    /** The subset the paper uses for inference timeseries (Fig 6). */
    std::vector<std::string> inferenceModelNames() const;

    /** The subset the paper fine-tunes (Fig 4). */
    std::vector<std::string> trainingModelNames() const;

  private:
    std::vector<ModelSpec> models_;
};

} // namespace polca::llm

