#include "llm/phase_model.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace polca::llm {

const char *
toString(Phase phase)
{
    return phase == Phase::Prompt ? "prompt" : "token";
}

int
PhaseModel::numGpus(const InferenceConfig &config) const
{
    return model_.gpusForDatatype(config.datatype);
}

double
PhaseModel::logGrowth(double base, double max, double tokens,
                      double refTokens, double slope)
{
    if (tokens <= refTokens)
        return base;
    double doublings = std::log2(tokens / refTokens);
    return std::min(max, base + slope * doublings);
}

sim::Tick
PhaseModel::promptDuration(const InferenceConfig &config) const
{
    if (config.inputTokens <= 0 || config.batchSize <= 0)
        sim::fatal("PhaseModel: non-positive input/batch size");

    double tokens = static_cast<double>(config.inputTokens) *
        config.batchSize;
    double ms = model_.promptMsPerKtoken * tokens / 1000.0;
    ms *= ModelSpec::datatypeLatencyFactor(config.datatype);
    // The per-ktoken constant assumes Table 3's GPU count; rescale if
    // the datatype changes the tensor-parallel width.
    ms *= static_cast<double>(model_.inferenceGpus) / numGpus(config);
    return sim::msToTicks(ms);
}

sim::Tick
PhaseModel::tokenPhaseDuration(const InferenceConfig &config) const
{
    if (config.outputTokens < 0)
        sim::fatal("PhaseModel: negative output size");
    if (config.outputTokens == 0)
        return 0;

    double perToken = model_.tokenTimeMs *
        (1.0 + model_.tokenBatchFactor *
         std::log2(static_cast<double>(config.batchSize)));
    perToken *= ModelSpec::datatypeLatencyFactor(config.datatype);
    perToken *= static_cast<double>(model_.inferenceGpus) /
        numGpus(config);
    return sim::msToTicks(perToken * config.outputTokens);
}

sim::Tick
PhaseModel::totalLatency(const InferenceConfig &config) const
{
    return promptDuration(config) + tokenPhaseDuration(config);
}

sim::Tick
PhaseModel::latencyAtClock(const InferenceConfig &config,
                           const power::GpuPowerModel &gpu) const
{
    double prompt = static_cast<double>(promptDuration(config)) *
        gpu.slowdownFactor(model_.promptComputeBoundFraction);
    double token = static_cast<double>(tokenPhaseDuration(config)) *
        gpu.slowdownFactor(model_.tokenComputeBoundFraction);
    return static_cast<sim::Tick>(prompt + token);
}

power::GpuActivity
PhaseModel::promptActivity(const InferenceConfig &config) const
{
    double tokens = static_cast<double>(config.inputTokens) *
        config.batchSize;
    double compute = logGrowth(model_.promptComputeBase,
                               model_.promptComputeMax, tokens,
                               256.0, 0.08);
    compute *= ModelSpec::datatypePowerFactor(config.datatype);
    return {compute, model_.promptMemActivity};
}

power::GpuActivity
PhaseModel::tokenActivity(const InferenceConfig &config) const
{
    double batch = static_cast<double>(config.batchSize);
    double compute = model_.tokenComputeBase *
        (1.0 + 0.10 * std::log2(std::max(batch, 1.0)));
    compute *= ModelSpec::datatypePowerFactor(config.datatype);
    double memory = std::min(
        1.0, model_.tokenMemActivity *
        (1.0 + 0.02 * std::log2(std::max(batch, 1.0))));
    return {compute, memory};
}

power::GpuActivity
PhaseModel::activity(Phase phase, const InferenceConfig &config) const
{
    return phase == Phase::Prompt ? promptActivity(config)
                                  : tokenActivity(config);
}

double
PhaseModel::computeBoundFraction(Phase phase) const
{
    return phase == Phase::Prompt ? model_.promptComputeBoundFraction
                                  : model_.tokenComputeBoundFraction;
}

} // namespace polca::llm
