/**
 * @file
 * Sub-stepped workload executor for server-level characterization.
 *
 * Runs a list of work segments (prompt/token phases, training
 * forward/backward/sync phases) on a subset of a server's GPUs,
 * advancing wall time in small steps so that reactive power capping
 * and workload progress interact the way they do on real hardware:
 * the cap controller only reacts after power has exceeded the cap,
 * and throttled clocks stretch the remaining work (Figs 4, 9).
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "power/server_model.hh"
#include "sim/timeseries.hh"
#include "sim/types.hh"

namespace polca::llm {

/** One phase of work to execute at a given activity level. */
struct WorkSegment
{
    /** Duration this segment would take at the maximum SM clock. */
    sim::Tick workAtMaxClock;

    /** GPU activity while the segment runs. */
    power::GpuActivity activity;

    /**
     * How strongly the segment stretches when the clock drops
     * (1 = pure compute, 0 = unaffected by SM clock).
     */
    double computeBoundFraction;

    /** Label recorded with the executed-segment log. */
    std::string label;
};

/** Stepping/sampling knobs of SegmentExecutor. */
struct ExecutorOptions
{
    sim::Tick stepSize = sim::msToTicks(5);
    sim::Tick sampleInterval = sim::msToTicks(100);
};

/**
 * Synchronous, sub-stepped executor bound to a server and a set of
 * its GPUs.  Keeps its own clock; samples GPU and server power on a
 * fixed interval like DCGM would (100 ms by default).
 */
class SegmentExecutor
{
  public:
    using Options = ExecutorOptions;

    /** Executed-segment record. */
    struct ExecutedSegment
    {
        std::string label;
        sim::Tick start;
        sim::Tick duration;
    };

    /**
     * @param server  The server to run on (not owned; must outlive
     *                the executor).
     * @param gpu_ids Indices of the GPUs the workload occupies
     *                (tensor-parallel width); the rest stay idle.
     */
    SegmentExecutor(power::ServerModel &server,
                    std::vector<std::size_t> gpu_ids,
                    Options options = Options());

    /** Current executor wall time. */
    sim::Tick now() const { return now_; }

    /**
     * Execute the segments in order; returns the elapsed wall time.
     * Clock throttling (locks, caps, brakes) already configured on
     * the GPUs applies and may stretch segments.
     */
    sim::Tick run(const std::vector<WorkSegment> &segments);

    /** Advance time with the workload GPUs idle. */
    void idle(sim::Tick duration);

    /** Aggregate power of the workload GPUs, sampled per interval. */
    const sim::TimeSeries &gpuPowerSeries() const { return gpuPower_; }

    /** Whole-server power, sampled per interval. */
    const sim::TimeSeries &serverPowerSeries() const
    {
        return serverPower_;
    }

    /** Per-GPU power of the first workload GPU (single-GPU views). */
    const sim::TimeSeries &firstGpuPowerSeries() const
    {
        return firstGpuPower_;
    }

    /** Log of executed segments with their stretched durations. */
    const std::vector<ExecutedSegment> &executedSegments() const
    {
        return executed_;
    }

  private:
    void setActivity(const power::GpuActivity &activity);
    void step(sim::Tick dt);
    void maybeSample();

    power::ServerModel &server_;
    std::vector<std::size_t> gpuIds_;
    Options options_;
    sim::Tick now_ = 0;
    sim::Tick nextSample_ = 0;
    sim::Tick nextCapStep_ = 0;
    sim::TimeSeries gpuPower_;
    sim::TimeSeries serverPower_;
    sim::TimeSeries firstGpuPower_;
    std::vector<ExecutedSegment> executed_;
};

} // namespace polca::llm

