#include "llm/executor.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace polca::llm {

SegmentExecutor::SegmentExecutor(power::ServerModel &server,
                                 std::vector<std::size_t> gpu_ids,
                                 Options options)
    : server_(server), gpuIds_(std::move(gpu_ids)), options_(options)
{
    if (gpuIds_.empty())
        sim::fatal("SegmentExecutor: no GPUs assigned");
    for (std::size_t id : gpuIds_) {
        if (id >= server_.numGpus())
            sim::fatal("SegmentExecutor: GPU index ", id, " out of range");
    }
    if (options_.stepSize <= 0 || options_.sampleInterval <= 0)
        sim::fatal("SegmentExecutor: non-positive step/sample interval");
    nextSample_ = 0;
    nextCapStep_ = power::GpuPowerModel::capControlPeriod();
}

void
SegmentExecutor::setActivity(const power::GpuActivity &activity)
{
    for (std::size_t id : gpuIds_)
        server_.gpu(id).setActivity(activity);
}

void
SegmentExecutor::maybeSample()
{
    while (now_ >= nextSample_) {
        double gpuTotal = 0.0;
        for (std::size_t id : gpuIds_)
            gpuTotal += server_.gpu(id).powerWatts();
        gpuPower_.add(nextSample_, gpuTotal);
        serverPower_.add(nextSample_, server_.powerWatts());
        firstGpuPower_.add(nextSample_,
                           server_.gpu(gpuIds_.front()).powerWatts());
        nextSample_ += options_.sampleInterval;
    }
}

void
SegmentExecutor::step(sim::Tick dt)
{
    now_ += dt;
    while (now_ >= nextCapStep_) {
        server_.stepCapControllers();
        nextCapStep_ += power::GpuPowerModel::capControlPeriod();
    }
    maybeSample();
}

sim::Tick
SegmentExecutor::run(const std::vector<WorkSegment> &segments)
{
    sim::Tick start = now_;
    for (const auto &segment : segments) {
        if (segment.workAtMaxClock < 0)
            sim::panic("SegmentExecutor: negative work");

        setActivity(segment.activity);
        maybeSample();

        sim::Tick segStart = now_;
        double remaining = static_cast<double>(segment.workAtMaxClock);
        while (remaining > 0.0) {
            // Work advances at 1/slowdown of wall speed; the slowest
            // participating GPU paces tensor-parallel execution.
            double slowdown = 1.0;
            for (std::size_t id : gpuIds_) {
                slowdown = std::max(
                    slowdown,
                    server_.gpu(id).slowdownFactor(
                        segment.computeBoundFraction));
            }
            double stepWall = static_cast<double>(options_.stepSize);
            double stepWork = stepWall / slowdown;
            if (stepWork >= remaining) {
                // Partial step to finish exactly.
                step(static_cast<sim::Tick>(remaining * slowdown));
                remaining = 0.0;
            } else {
                step(options_.stepSize);
                remaining -= stepWork;
            }
        }
        executed_.push_back(
            {segment.label, segStart, now_ - segStart});
    }
    return now_ - start;
}

void
SegmentExecutor::idle(sim::Tick duration)
{
    setActivity(power::GpuActivity::idle());
    sim::Tick end = now_ + duration;
    while (now_ < end)
        step(std::min(options_.stepSize, end - now_));
}

} // namespace polca::llm
