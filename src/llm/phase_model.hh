/**
 * @file
 * Inference phase model: maps a request configuration (input size,
 * batch size, output size, datatype) to prompt/token phase durations
 * and GPU activity factors (Section 4.2 of the paper).
 */

#pragma once

#include <utility>

#include "llm/model_spec.hh"
#include "power/gpu_power_model.hh"
#include "sim/types.hh"

namespace polca::llm {

/** Configuration knobs of Section 2. */
struct InferenceConfig
{
    int inputTokens = 2048;     ///< prompt length
    int batchSize = 1;          ///< requests processed together
    int outputTokens = 256;     ///< tokens generated per request
    Datatype datatype = Datatype::FP16;
};

/** The two phases of a generative inference (Fig 1). */
enum class Phase
{
    Prompt,
    Token,
};

const char *toString(Phase phase);

/**
 * Pure-function model of one LLM's inference behaviour.  All durations
 * are at the maximum SM clock; callers apply the slowdown factor of
 * the GPU they run on (GpuPowerModel::slowdownFactor with this model's
 * per-phase compute-bound fraction).
 */
class PhaseModel
{
  public:
    /** Copies the spec: a PhaseModel may safely outlive the catalog
     *  it was built from. */
    explicit PhaseModel(ModelSpec model) : model_(std::move(model)) {}

    const ModelSpec &model() const { return model_; }

    /** Tensor-parallel GPUs the config needs (datatype dependent). */
    int numGpus(const InferenceConfig &config) const;

    /** Prompt-phase duration at max clock. */
    sim::Tick promptDuration(const InferenceConfig &config) const;

    /** Token-phase duration at max clock (all output tokens). */
    sim::Tick tokenPhaseDuration(const InferenceConfig &config) const;

    /** End-to-end latency at max clock. */
    sim::Tick totalLatency(const InferenceConfig &config) const;

    /**
     * End-to-end latency when both phases run at the given effective
     * clock (uses the per-phase compute-bound fractions).
     */
    sim::Tick latencyAtClock(const InferenceConfig &config,
                             const power::GpuPowerModel &gpu) const;

    /** GPU activity during the prompt phase.  Grows with
     *  log2(input*batch) and saturates (Fig 8a). */
    power::GpuActivity
    promptActivity(const InferenceConfig &config) const;

    /** GPU activity during the token phase (low compute, high
     *  memory; rises mildly with batch size, Fig 8c). */
    power::GpuActivity
    tokenActivity(const InferenceConfig &config) const;

    /** Activity for @p phase. */
    power::GpuActivity activity(Phase phase,
                                const InferenceConfig &config) const;

    /** Compute-bound fraction for @p phase (Insight 7). */
    double computeBoundFraction(Phase phase) const;

  private:
    /** Saturating log growth used by the activity models. */
    static double logGrowth(double base, double max, double tokens,
                            double refTokens, double slope);

    ModelSpec model_;
};

} // namespace polca::llm

