#include "llm/segments.hh"

namespace polca::llm {

std::vector<WorkSegment>
inferenceSegments(const PhaseModel &model, const InferenceConfig &config)
{
    std::vector<WorkSegment> segments;
    segments.push_back({
        model.promptDuration(config),
        model.promptActivity(config),
        model.computeBoundFraction(Phase::Prompt),
        "prompt",
    });
    if (config.outputTokens > 0) {
        segments.push_back({
            model.tokenPhaseDuration(config),
            model.tokenActivity(config),
            model.computeBoundFraction(Phase::Token),
            "token",
        });
    }
    return segments;
}

std::vector<WorkSegment>
trainingIterationSegments(const TrainingModel &model)
{
    static const char *labels[] = {"forward", "dip", "backward", "sync"};
    std::vector<WorkSegment> segments;
    std::size_t i = 0;
    for (const auto &segment : model.segments(1.0)) {
        segments.push_back({
            segment.duration,
            segment.activity,
            segment.computeBound ? model.spec().computeBoundFraction
                                 : 0.0,
            labels[i % 4],
        });
        ++i;
    }
    return segments;
}

} // namespace polca::llm
