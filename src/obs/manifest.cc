#include "obs/manifest.hh"

#include <cstdio>
#include <ostream>

namespace polca::obs {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

} // namespace

std::string
fnv1a64Hex(const std::string &text)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

void
RunManifest::writeJson(std::ostream &os) const
{
    os << "{\n";
    os << "  \"tool\": \"" << jsonEscape(tool) << "\",\n";
    os << "  \"command\": \"" << jsonEscape(command) << "\",\n";
    os << "  \"scenario\": \"" << jsonEscape(scenarioPath) << "\",\n";
    os << "  \"config_digest\": \"" << jsonEscape(configDigest)
       << "\",\n";
    os << "  \"seed\": " << seed << ",\n";
    os << "  \"jobs\": " << jobs << ",\n";
    os << "  \"duration_s\": " << jsonNumber(durationS) << ",\n";
    os << "  \"metrics_interval_s\": " << jsonNumber(metricsIntervalS)
       << ",\n";
    os << "  \"artifacts\": [";
    for (std::size_t i = 0; i < artifacts.size(); ++i) {
        os << (i ? ",\n    " : "\n    ");
        os << '"' << jsonEscape(artifacts[i]) << '"';
    }
    os << (artifacts.empty() ? "]" : "\n  ]") << "\n";
    os << "}\n";
}

} // namespace polca::obs
