#include "obs/trace_recorder.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "analysis/csv.hh"
#include "sim/logging.hh"

namespace polca::obs {

const char *
toString(TraceCategory category)
{
    switch (category) {
      case TraceCategory::Sim:
        return "sim";
      case TraceCategory::Telemetry:
        return "telemetry";
      case TraceCategory::Control:
        return "control";
      case TraceCategory::Power:
        return "power";
      case TraceCategory::Cluster:
        return "cluster";
      case TraceCategory::Fault:
        return "fault";
    }
    return "?";
}

std::uint32_t
parseTraceCategories(const std::string &list)
{
    if (list.empty() || list == "all")
        return kAllTraceCategories;

    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        std::string token = list.substr(pos, comma - pos);
        pos = comma + 1;
        if (token.empty())
            continue;
        bool known = false;
        for (TraceCategory c :
             {TraceCategory::Sim, TraceCategory::Telemetry,
              TraceCategory::Control, TraceCategory::Power,
              TraceCategory::Cluster, TraceCategory::Fault}) {
            if (token == toString(c)) {
                mask |= static_cast<std::uint32_t>(c);
                known = true;
                break;
            }
        }
        if (!known) {
            sim::fatal("unknown trace category '", token,
                       "' (use sim,telemetry,control,power,cluster,"
                       "fault or all)");
        }
    }
    return mask;
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity)
{
    if (capacity_ == 0)
        sim::panic("TraceRecorder: zero capacity");
    buffer_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void
TraceRecorder::push(const TraceEvent &event)
{
    ++recorded_;
    if (buffer_.size() < capacity_) {
        buffer_.push_back(event);
        return;
    }
    buffer_[head_] = event;
    head_ = (head_ + 1) % capacity_;
    ++overwritten_;
}

void
TraceRecorder::instant(TraceCategory category, const char *name,
                       sim::Tick now, std::int32_t track, double value)
{
    if (!enabled(category))
        return;
    TraceEvent event;
    event.start = now;
    event.duration = -1;
    event.name = name;
    event.category = category;
    event.track = track;
    event.value = value;
    push(event);
}

void
TraceRecorder::complete(TraceCategory category, const char *name,
                        sim::Tick start, sim::Tick duration,
                        std::int32_t track, double value)
{
    if (!enabled(category))
        return;
    TraceEvent event;
    event.start = start;
    event.duration = duration < 0 ? 0 : duration;
    event.name = name;
    event.category = category;
    event.track = track;
    event.value = value;
    push(event);
}

std::vector<TraceEvent>
TraceRecorder::events() const
{
    // Reassemble insertion order (oldest first), then stable-sort by
    // start so spans recorded at completion time interleave
    // correctly with instants.
    std::vector<TraceEvent> out;
    out.reserve(buffer_.size());
    if (buffer_.size() == capacity_) {
        for (std::size_t i = 0; i < capacity_; ++i)
            out.push_back(buffer_[(head_ + i) % capacity_]);
    } else {
        out = buffer_;
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.start < b.start;
                     });
    return out;
}

void
TraceRecorder::clear()
{
    buffer_.clear();
    head_ = 0;
    recorded_ = 0;
    overwritten_ = 0;
}

void
TraceRecorder::exportChromeJson(std::ostream &os) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    char buf[256];
    for (const TraceEvent &event : events()) {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
        if (event.duration >= 0) {
            std::snprintf(
                buf, sizeof(buf),
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                "\"pid\":0,\"tid\":%d,\"ts\":%lld,\"dur\":%lld,"
                "\"args\":{\"value\":%.6f}}",
                event.name, toString(event.category), event.track,
                static_cast<long long>(event.start),
                static_cast<long long>(event.duration), event.value);
        } else {
            std::snprintf(
                buf, sizeof(buf),
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\","
                "\"s\":\"g\",\"pid\":0,\"tid\":%d,\"ts\":%lld,"
                "\"args\":{\"value\":%.6f}}",
                event.name, toString(event.category), event.track,
                static_cast<long long>(event.start), event.value);
        }
        os << buf;
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void
TraceRecorder::exportCsv(std::ostream &os) const
{
    analysis::CsvWriter writer(os);
    writer.header({"start_us", "duration_us", "name", "category",
                   "track", "value"});
    char value[64];
    for (const TraceEvent &event : events()) {
        std::snprintf(value, sizeof(value), "%.6f", event.value);
        writer.rowStrings(
            {std::to_string(event.start),
             event.duration >= 0 ? std::to_string(event.duration) : "",
             event.name, toString(event.category),
             std::to_string(event.track), value});
    }
}

} // namespace polca::obs
