#include "obs/metrics.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "analysis/csv.hh"
#include "sim/logging.hh"

namespace polca::obs {

namespace {

std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

std::string
formatCount(std::uint64_t v)
{
    return std::to_string(v);
}

/** Compact bucket-bound format: "12.5", "1e+06", "inf". */
std::string
formatBound(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::string
bucketLabel(const std::string &name, std::size_t b, double lo,
            double hi)
{
    return name + "::bucket" + std::to_string(b) + "[" +
        formatBound(lo) + "," + formatBound(hi) + ")";
}

} // namespace

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    if (buckets == 0 || !(hi > lo))
        sim::panic("obs::Histogram: bad shape [", lo, ", ", hi,
                   ") x ", buckets);
}

void
Histogram::add(double value)
{
    double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto bucket = static_cast<std::int64_t>((value - lo_) / width);
    bucket = std::clamp<std::int64_t>(
        bucket, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(bucket)];
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

Counter &
MetricsRegistry::counter(const std::string &name,
                         const std::string &desc)
{
    Entry &entry = entries_[name];
    if (entry.gauge || entry.histogram || entry.logHistogram)
        sim::panic("MetricsRegistry: '", name,
                   "' already registered with another kind");
    if (!entry.counter) {
        entry.counter = std::make_unique<Counter>();
        entry.desc = desc;
    }
    return *entry.counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const std::string &desc)
{
    Entry &entry = entries_[name];
    if (entry.counter || entry.histogram || entry.logHistogram)
        sim::panic("MetricsRegistry: '", name,
                   "' already registered with another kind");
    if (!entry.gauge) {
        entry.gauge = std::make_unique<Gauge>();
        entry.desc = desc;
    }
    return *entry.gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name, double lo,
                           double hi, std::size_t buckets,
                           const std::string &desc)
{
    Entry &entry = entries_[name];
    if (entry.counter || entry.gauge || entry.logHistogram)
        sim::panic("MetricsRegistry: '", name,
                   "' already registered with another kind");
    if (!entry.histogram) {
        entry.histogram = std::make_unique<Histogram>(lo, hi, buckets);
        entry.desc = desc;
    } else if (entry.histogram->lo() != lo ||
               entry.histogram->hi() != hi ||
               entry.histogram->buckets() != buckets) {
        sim::panic("MetricsRegistry: histogram '", name,
                   "' re-registered with a different shape");
    }
    return *entry.histogram;
}

LogHistogram &
MetricsRegistry::logHistogram(const std::string &name,
                              double minValue, double maxValue,
                              double relativeError,
                              const std::string &desc)
{
    Entry &entry = entries_[name];
    if (entry.counter || entry.gauge || entry.histogram)
        sim::panic("MetricsRegistry: '", name,
                   "' already registered with another kind");
    if (!entry.logHistogram) {
        entry.logHistogram = std::make_unique<LogHistogram>(
            minValue, maxValue, relativeError);
        entry.desc = desc;
    } else if (entry.logHistogram->minValue() != minValue ||
               entry.logHistogram->maxValue() != maxValue ||
               entry.logHistogram->relativeError() != relativeError) {
        sim::panic("MetricsRegistry: log histogram '", name,
                   "' re-registered with a different shape");
    }
    return *entry.logHistogram;
}

bool
MetricsRegistry::has(const std::string &name) const
{
    return entries_.count(name) > 0;
}

void
MetricsRegistry::reset()
{
    for (auto &[name, entry] : entries_) {
        if (entry.counter)
            entry.counter->reset();
        if (entry.gauge)
            entry.gauge->reset();
        if (entry.histogram)
            entry.histogram->reset();
        if (entry.logHistogram)
            entry.logHistogram->reset();
    }
}

MetricsRegistry::Values
MetricsRegistry::saveValues() const
{
    Values values;
    for (const auto &[name, entry] : entries_) {
        if (entry.counter) {
            values.counters.emplace(name, entry.counter->value());
        } else if (entry.gauge) {
            if (!entry.gauge->hasSource() &&
                !entry.gauge->isVolatile()) {
                values.gauges.emplace(name, entry.gauge->value());
            }
        } else if (entry.histogram) {
            values.histograms.emplace(name, *entry.histogram);
        } else if (entry.logHistogram) {
            values.logHistograms.emplace(name, *entry.logHistogram);
        }
    }
    return values;
}

void
MetricsRegistry::restoreValues(const Values &values)
{
    for (const auto &[name, value] : values.counters) {
        auto it = entries_.find(name);
        if (it == entries_.end() || !it->second.counter)
            sim::panic("MetricsRegistry: restoring counter '", name,
                       "' that this registry never registered");
        it->second.counter->restore(value);
    }
    for (const auto &[name, value] : values.gauges) {
        auto it = entries_.find(name);
        if (it == entries_.end() || !it->second.gauge)
            sim::panic("MetricsRegistry: restoring gauge '", name,
                       "' that this registry never registered");
        it->second.gauge->restoreValue(value);
    }
    for (const auto &[name, h] : values.histograms) {
        auto it = entries_.find(name);
        if (it == entries_.end() || !it->second.histogram)
            sim::panic("MetricsRegistry: restoring histogram '", name,
                       "' that this registry never registered");
        Histogram &mine = *it->second.histogram;
        if (mine.lo() != h.lo() || mine.hi() != h.hi() ||
            mine.buckets() != h.buckets()) {
            sim::panic("MetricsRegistry: histogram '", name,
                       "' restored with a different shape");
        }
        mine = h;
    }
    for (const auto &[name, h] : values.logHistograms) {
        auto it = entries_.find(name);
        if (it == entries_.end() || !it->second.logHistogram)
            sim::panic("MetricsRegistry: restoring log histogram '",
                       name, "' that this registry never registered");
        if (!it->second.logHistogram->sameShape(h)) {
            sim::panic("MetricsRegistry: log histogram '", name,
                       "' restored with a different shape");
        }
        *it->second.logHistogram = h;
    }
}

void
MetricsRegistry::freezeGauges()
{
    for (auto &[name, entry] : entries_) {
        if (entry.gauge)
            entry.gauge->freeze();
    }
}

std::vector<std::array<std::string, 3>>
MetricsRegistry::flatten() const
{
    // std::map iteration is name-sorted, which makes both dump
    // formats deterministic for a fixed set of registrations.
    std::vector<std::array<std::string, 3>> rows;
    for (const auto &[name, entry] : entries_) {
        if (entry.counter) {
            rows.push_back({name, "counter",
                            formatCount(entry.counter->value())});
        } else if (entry.gauge) {
            if (entry.gauge->isVolatile())
                continue;
            rows.push_back({name, "gauge",
                            formatDouble(entry.gauge->value())});
        } else if (entry.histogram) {
            const Histogram &h = *entry.histogram;
            rows.push_back({name + "::count", "histogram",
                            formatCount(h.count())});
            rows.push_back({name + "::mean", "histogram",
                            formatDouble(h.mean())});
            if (h.count() > 0) {
                rows.push_back({name + "::min", "histogram",
                                formatDouble(h.min())});
                rows.push_back({name + "::max", "histogram",
                                formatDouble(h.max())});
            }
            double width =
                (h.hi() - h.lo()) / static_cast<double>(h.buckets());
            for (std::size_t b = 0; b < h.buckets(); ++b) {
                double lo = h.lo() + width * static_cast<double>(b);
                rows.push_back({bucketLabel(name, b, lo, lo + width),
                                "histogram",
                                formatCount(h.bucketCount(b))});
            }
        } else if (entry.logHistogram) {
            const LogHistogram &h = *entry.logHistogram;
            rows.push_back({name + "::count", "loghist",
                            formatCount(h.count())});
            rows.push_back({name + "::mean", "loghist",
                            formatDouble(h.mean())});
            if (h.count() > 0) {
                rows.push_back({name + "::min", "loghist",
                                formatDouble(h.min())});
                rows.push_back({name + "::max", "loghist",
                                formatDouble(h.max())});
                rows.push_back({name + "::p50", "loghist",
                                formatDouble(h.p50())});
                rows.push_back({name + "::p90", "loghist",
                                formatDouble(h.p90())});
                rows.push_back({name + "::p95", "loghist",
                                formatDouble(h.p95())});
                rows.push_back({name + "::p99", "loghist",
                                formatDouble(h.p99())});
                rows.push_back({name + "::p99.9", "loghist",
                                formatDouble(h.p999())});
            }
            // Log histograms can have hundreds of buckets; only the
            // occupied ones are informative, and the bounds in the
            // label keep sparse dumps self-describing.
            for (std::size_t b = 0; b < h.buckets(); ++b) {
                if (h.bucketCount(b) == 0)
                    continue;
                rows.push_back({bucketLabel(name, b, h.bucketLo(b),
                                            h.bucketHi(b)),
                                "loghist",
                                formatCount(h.bucketCount(b))});
            }
        }
    }
    return rows;
}

void
MetricsRegistry::dump(std::ostream &os) const
{
    // Descriptions ride along as trailing comments, gem5-style.
    auto rows = flatten();
    for (const auto &row : rows) {
        std::string line = row[0];
        if (line.size() < 48)
            line.append(48 - line.size(), ' ');
        line += ' ';
        line += row[2];
        // Attach the description of the base name, if any.
        std::string base = row[0].substr(0, row[0].find("::"));
        auto it = entries_.find(base);
        if (it != entries_.end() && !it->second.desc.empty() &&
            row[0] == base) {
            line += "  # ";
            line += it->second.desc;
        }
        os << line << '\n';
    }
}

void
MetricsRegistry::visitScalars(
    const std::function<void(const std::string &, ScalarKind,
                             double)> &fn) const
{
    for (const auto &[name, entry] : entries_) {
        if (entry.counter) {
            fn(name, ScalarKind::Counter,
               static_cast<double>(entry.counter->value()));
        } else if (entry.gauge) {
            if (!entry.gauge->isVolatile())
                fn(name, ScalarKind::Gauge, entry.gauge->value());
        } else if (entry.histogram) {
            fn(name + "::count", ScalarKind::HistogramCount,
               static_cast<double>(entry.histogram->count()));
        } else if (entry.logHistogram) {
            fn(name + "::count", ScalarKind::HistogramCount,
               static_cast<double>(entry.logHistogram->count()));
        }
    }
}

void
MetricsRegistry::dumpCsv(std::ostream &os) const
{
    analysis::CsvWriter writer(os);
    writer.header({"name", "kind", "value"});
    for (const auto &row : flatten())
        writer.rowStrings({row[0], row[1], row[2]});
}

} // namespace polca::obs
