/**
 * @file
 * HDR-style log-bucketed histogram with a bounded relative error.
 *
 * Buckets grow geometrically: bucket i covers
 * [min * g^i, min * g^(i+1)) with g = (1 + e)^2, and a query reports
 * the bucket's geometric-mean-ish representative lo * (1 + e).  For
 * any recorded value inside [min, max) the reported quantile is
 * therefore within relative error e of an exact-percentile oracle
 * (the bound test_log_histogram checks against adversarial
 * distributions).  Values below min (including zero and negatives)
 * clamp into a dedicated underflow bucket and values >= max into an
 * overflow bucket; those two report the tracked exact min/max, so
 * the error bound formally applies only to in-range samples.
 *
 * Histograms with the same shape (min, max, error) are mergeable, and
 * merging is associative and commutative — per-server histograms
 * aggregate into row/site rollups in any order with the same result.
 * All state is integer counts plus exact min/max/sum, so two
 * same-seed runs dump byte-identical histograms.
 */

#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace polca::obs {

class LogHistogram
{
  public:
    /**
     * @param minValue   smallest trackable value (> 0)
     * @param maxValue   upper edge of the tracked range (> minValue)
     * @param relativeError  quantile error bound e in (0, 1)
     */
    LogHistogram(double minValue, double maxValue,
                 double relativeError);

    void add(double value);
    void reset();

    /** Add @p other's samples into this one; shapes must match
     *  (panics otherwise). */
    void merge(const LogHistogram &other);

    /** @name Shape (identity for registry get-or-create and merge) */
    /** @{ */
    double minValue() const { return minValue_; }
    double maxValue() const { return maxValue_; }
    double relativeError() const { return relativeError_; }
    bool sameShape(const LogHistogram &other) const;
    /** @} */

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }
    double min() const { return min_; }
    double max() const { return max_; }

    /**
     * Value at quantile @p q in [0, 1] (0 on an empty histogram).
     * For q mapping into the underflow/overflow buckets the exact
     * tracked min/max is returned; everywhere else the bucket
     * representative, within relativeError() of the exact answer.
     */
    double quantile(double q) const;

    double p50() const { return quantile(0.50); }
    double p90() const { return quantile(0.90); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }
    double p999() const { return quantile(0.999); }

    /** @name Bucket introspection (dump formatting, tests) */
    /** @{ */

    /** Total buckets, underflow (0) and overflow (last) included. */
    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t bucketCount(std::size_t b) const
    {
        return counts_.at(b);
    }

    /** Lower edge of bucket @p b (0 for the underflow bucket). */
    double bucketLo(std::size_t b) const;

    /** Upper edge of bucket @p b (+inf for the overflow bucket). */
    double bucketHi(std::size_t b) const;

    /** The value a quantile landing in bucket @p b reports. */
    double bucketRepresentative(std::size_t b) const;
    /** @} */

  private:
    std::size_t bucketFor(double value) const;

    double minValue_;
    double maxValue_;
    double relativeError_;
    double growth_;     ///< (1 + e)^2, cached
    double invLogGrowth_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace polca::obs
