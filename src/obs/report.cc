#include "obs/report.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "analysis/csv.hh"
#include "obs/manifest.hh"

namespace polca::obs {

namespace {

namespace fs = std::filesystem;

bool
readFile(const fs::path &path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream ss;
    ss << is.rdbuf();
    out = ss.str();
    return true;
}

/** Extract "key": "value" from the manifest (our own stable JSON). */
std::string
jsonStringField(const std::string &text, const std::string &key)
{
    std::string pat = "\"" + key + "\": \"";
    std::string::size_type p = text.find(pat);
    if (p == std::string::npos)
        return "";
    p += pat.size();
    std::string out;
    while (p < text.size() && text[p] != '"') {
        if (text[p] == '\\' && p + 1 < text.size()) {
            out += text[p + 1];
            p += 2;
            continue;
        }
        out += text[p];
        ++p;
    }
    return out;
}

/** Extract "key": 123.4 (raw token) from the manifest. */
std::string
jsonRawField(const std::string &text, const std::string &key)
{
    std::string pat = "\"" + key + "\": ";
    std::string::size_type p = text.find(pat);
    if (p == std::string::npos)
        return "";
    p += pat.size();
    std::string out;
    while (p < text.size() && text[p] != ',' && text[p] != '\n')
        out += text[p++];
    return out;
}

std::vector<std::string>
jsonArtifacts(const std::string &text)
{
    std::vector<std::string> out;
    std::string::size_type p = text.find("\"artifacts\": [");
    if (p == std::string::npos)
        return out;
    p += std::string("\"artifacts\": [").size();
    while (p < text.size() && text[p] != ']') {
        if (text[p] == '"') {
            std::string item;
            ++p;
            while (p < text.size() && text[p] != '"')
                item += text[p++];
            out.push_back(item);
        }
        ++p;
    }
    return out;
}

std::string
htmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '&':
            out += "&amp;";
            break;
          case '<':
            out += "&lt;";
            break;
          case '>':
            out += "&gt;";
            break;
          default:
            out += c;
        }
    }
    return out;
}

/** Compact deterministic re-format of a CSV numeric cell. */
std::string
compactNumber(const std::string &raw)
{
    if (raw.empty())
        return raw;
    char *end = nullptr;
    double v = std::strtod(raw.c_str(), &end);
    if (end == raw.c_str() || *end != '\0')
        return raw;  // not a plain number: keep verbatim
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::string
fmtCoord(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return buf;
}

/**
 * Dual-format document builder: every section lands in both the
 * markdown and the HTML body; SVG fragments are HTML-only (the
 * markdown notes where to look).
 */
class Doc
{
  public:
    void
    heading(int level, const std::string &text)
    {
        md_ += "\n";
        md_.append(static_cast<std::size_t>(level), '#');
        md_ += " " + text + "\n\n";
        std::string tag = "h" + std::to_string(level);
        html_ += "<" + tag + ">" + htmlEscape(text) + "</" + tag +
            ">\n";
    }

    void
    para(const std::string &text)
    {
        md_ += text + "\n\n";
        html_ += "<p>" + htmlEscape(text) + "</p>\n";
    }

    void
    table(const std::vector<std::string> &header,
          const std::vector<std::vector<std::string>> &rows)
    {
        for (const std::string &h : header)
            md_ += "| " + h + " ";
        md_ += "|\n";
        for (std::size_t i = 0; i < header.size(); ++i)
            md_ += "| --- ";
        md_ += "|\n";
        for (const auto &row : rows) {
            for (const std::string &cell : row)
                md_ += "| " + cell + " ";
            md_ += "|\n";
        }
        md_ += "\n";

        html_ += "<table>\n<tr>";
        for (const std::string &h : header)
            html_ += "<th>" + htmlEscape(h) + "</th>";
        html_ += "</tr>\n";
        for (const auto &row : rows) {
            html_ += "<tr>";
            for (const std::string &cell : row)
                html_ += "<td>" + htmlEscape(cell) + "</td>";
            html_ += "</tr>\n";
        }
        html_ += "</table>\n";
    }

    /** HTML-only fragment (SVG); @p mdNote lands in the markdown. */
    void
    htmlOnly(const std::string &fragment, const std::string &mdNote)
    {
        html_ += fragment;
        if (!mdNote.empty())
            md_ += mdNote + "\n\n";
    }

    const std::string &markdown() const { return md_; }
    const std::string &htmlBody() const { return html_; }

  private:
    std::string md_;
    std::string html_;
};

/** Minimal embedded stylesheet; no external fetches. */
const char *kCss =
    "body{font-family:sans-serif;margin:2em;max-width:60em}"
    "table{border-collapse:collapse;margin:0.5em 0}"
    "th,td{border:1px solid #999;padding:0.2em 0.6em;"
    "text-align:right}"
    "th:first-child,td:first-child{text-align:left}"
    "h1,h2{border-bottom:1px solid #ccc}"
    "footer{margin-top:2em;color:#666;font-size:smaller}";

/** CSV text -> rows; empty on missing/empty file. */
std::vector<std::vector<std::string>>
loadCsv(const fs::path &path)
{
    std::string text;
    if (!readFile(path, text) || text.empty())
        return {};
    return analysis::parseCsv(text);
}

/** result.csv key set shown under "Recovery SLOs" instead of the
 *  run summary. */
bool
isRecoveryKey(const std::string &key)
{
    static const char *keys[] = {
        "failsafe_entries",    "failsafe_s",
        "time_to_failsafe_max_s", "mttr_total_s",
        "mttr_max_s",          "controller_crashes",
        "controller_recoveries", "controller_down_s",
        "caps_stale_s",        "stale_s",
        "brake_s",             "mode_transitions",
    };
    for (const char *k : keys) {
        if (key == k)
            return true;
    }
    return false;
}

void
keyValueSection(Doc &doc, const std::string &title,
                const std::vector<std::vector<std::string>> &rows,
                bool recoveryKeys)
{
    std::vector<std::vector<std::string>> selected;
    for (std::size_t i = 1; i < rows.size(); ++i) {
        if (rows[i].size() < 2)
            continue;
        if (isRecoveryKey(rows[i][0]) == recoveryKeys) {
            selected.push_back(
                {rows[i][0], compactNumber(rows[i][1])});
        }
    }
    if (selected.empty())
        return;
    doc.heading(2, title);
    doc.table({"metric", "value"}, selected);
}

/** Percentile table from a metrics.csv dump: every log histogram's
 *  count/mean/min/p50/p90/p95/p99/p99.9/max scalars. */
void
percentileSection(Doc &doc, const std::string &title,
                  const std::vector<std::vector<std::string>> &rows)
{
    static const std::vector<std::string> fields = {
        "count", "mean", "min", "p50", "p90",
        "p95",   "p99",  "p99.9", "max"};
    std::map<std::string, std::map<std::string, std::string>> hists;
    for (std::size_t i = 1; i < rows.size(); ++i) {
        if (rows[i].size() < 3 || rows[i][1] != "loghist")
            continue;
        const std::string &name = rows[i][0];
        std::string::size_type sep = name.find("::");
        if (sep == std::string::npos)
            continue;
        std::string field = name.substr(sep + 2);
        if (std::find(fields.begin(), fields.end(), field) ==
            fields.end())
            continue;
        hists[name.substr(0, sep)][field] =
            compactNumber(rows[i][2]);
    }
    if (hists.empty())
        return;

    doc.heading(2, title);
    std::vector<std::string> header = {"metric"};
    header.insert(header.end(), fields.begin(), fields.end());
    std::vector<std::vector<std::string>> out;
    for (const auto &[name, values] : hists) {
        std::vector<std::string> row = {name};
        for (const std::string &f : fields) {
            auto it = values.find(f);
            row.push_back(it == values.end() ? "-" : it->second);
        }
        out.push_back(std::move(row));
    }
    doc.table(header, out);
}

/** Generic CSV table section (summary.csv, chaos_summary.csv). */
void
csvSection(Doc &doc, const std::string &title,
           const std::vector<std::vector<std::string>> &rows)
{
    if (rows.size() < 2)
        return;
    doc.heading(2, title);
    std::vector<std::vector<std::string>> body;
    for (std::size_t i = 1; i < rows.size(); ++i) {
        std::vector<std::string> row;
        row.reserve(rows[i].size());
        for (std::size_t c = 0; c < rows[i].size(); ++c)
            row.push_back(c == 0 ? rows[i][c]
                                 : compactNumber(rows[i][c]));
        body.push_back(std::move(row));
    }
    doc.table(rows[0], body);
}

void
violationsSection(Doc &doc,
                  const std::vector<std::vector<std::string>> &rows,
                  bool artifactPresent)
{
    if (!artifactPresent)
        return;
    doc.heading(2, "Safety violations");
    if (rows.size() < 2) {
        doc.para("No safety-invariant violations recorded.");
        return;
    }
    std::vector<std::vector<std::string>> body(rows.begin() + 1,
                                               rows.end());
    doc.table(rows[0], body);
}

/**
 * Inline-SVG timeline: row power samples (left axis) and per-interval
 * cap commands (right axis, scaled to their own max) over sim time.
 */
void
timelineSection(Doc &doc,
                const std::vector<std::vector<std::string>> &rows)
{
    if (rows.size() < 3)  // header + at least two samples
        return;
    const std::vector<std::string> &header = rows[0];
    auto column = [&](const std::string &name) {
        for (std::size_t c = 0; c < header.size(); ++c) {
            if (header[c] == name)
                return static_cast<int>(c);
        }
        return -1;
    };
    int timeCol = column("time_s");
    int powerCol = column("telemetry.latest_row_watts");
    int capCol = column("manager.cap_commands");
    if (timeCol < 0 || powerCol < 0)
        return;

    auto cell = [&](std::size_t r, int c) {
        return std::strtod(rows[r][static_cast<std::size_t>(c)].c_str(),
                           nullptr);
    };
    double tMin = cell(1, timeCol);
    double tMax = cell(rows.size() - 1, timeCol);
    double pMax = 0.0, capMax = 0.0;
    for (std::size_t r = 1; r < rows.size(); ++r) {
        pMax = std::max(pMax, cell(r, powerCol));
        if (capCol >= 0)
            capMax = std::max(capMax, cell(r, capCol));
    }
    if (tMax <= tMin || pMax <= 0.0)
        return;

    const double w = 760.0, h = 240.0, x0 = 60.0, y0 = 20.0;
    auto x = [&](double t) {
        return x0 + (t - tMin) / (tMax - tMin) * w;
    };
    auto yPower = [&](double p) { return y0 + h - p / pMax * h; };

    std::string svg;
    svg += "<svg viewBox=\"0 0 860 300\" role=\"img\" "
           "aria-label=\"power and cap timeline\">\n";
    svg += "<rect x=\"60\" y=\"20\" width=\"760\" height=\"240\" "
           "fill=\"none\" stroke=\"#999\"/>\n";
    svg += "<text x=\"8\" y=\"30\" font-size=\"11\">" +
        compactNumber(fmtCoord(pMax)) + " W</text>\n";
    svg += "<text x=\"8\" y=\"260\" font-size=\"11\">0 W</text>\n";
    svg += "<text x=\"60\" y=\"285\" font-size=\"11\">" +
        compactNumber(fmtCoord(tMin)) + " s</text>\n";
    svg += "<text x=\"760\" y=\"285\" font-size=\"11\">" +
        compactNumber(fmtCoord(tMax)) + " s</text>\n";

    svg += "<polyline fill=\"none\" stroke=\"#36c\" "
           "stroke-width=\"1.5\" points=\"";
    for (std::size_t r = 1; r < rows.size(); ++r) {
        svg += fmtCoord(x(cell(r, timeCol))) + "," +
            fmtCoord(yPower(cell(r, powerCol))) + " ";
    }
    svg += "\"/>\n";

    if (capCol >= 0 && capMax > 0.0) {
        auto yCap = [&](double v) {
            return y0 + h - v / capMax * h;
        };
        svg += "<polyline fill=\"none\" stroke=\"#e80\" "
               "stroke-width=\"1\" stroke-dasharray=\"3,2\" "
               "points=\"";
        for (std::size_t r = 1; r < rows.size(); ++r) {
            svg += fmtCoord(x(cell(r, timeCol))) + "," +
                fmtCoord(yCap(cell(r, capCol))) + " ";
        }
        svg += "\"/>\n";
        svg += "<text x=\"828\" y=\"30\" font-size=\"11\" "
               "fill=\"#e80\">" +
            compactNumber(fmtCoord(capMax)) + "</text>\n";
    }
    svg += "<text x=\"70\" y=\"36\" font-size=\"11\" "
           "fill=\"#36c\">row power (W)</text>\n";
    if (capCol >= 0 && capMax > 0.0) {
        svg += "<text x=\"70\" y=\"50\" font-size=\"11\" "
               "fill=\"#e80\">cap commands / interval</text>\n";
    }
    svg += "</svg>\n";

    doc.heading(2, "Power / cap timeline");
    doc.htmlOnly(svg,
                 "*(timeline rendered in report.html; data in "
                 "stats_interval.csv)*");
}

} // namespace

ReportResult
writeRunReport(const std::string &runDir)
{
    ReportResult out;
    fs::path dir(runDir);

    std::string manifestText;
    if (!readFile(dir / "manifest.json", manifestText)) {
        out.error = "no manifest.json in '" + runDir +
            "' (is this a polcactl run directory?)";
        return out;
    }

    std::string command = jsonStringField(manifestText, "command");
    std::string scenario = jsonStringField(manifestText, "scenario");
    std::string digest =
        jsonStringField(manifestText, "config_digest");
    std::string tool = jsonStringField(manifestText, "tool");
    std::string seed = jsonRawField(manifestText, "seed");
    std::string durationS =
        jsonRawField(manifestText, "duration_s");
    std::string intervalS =
        jsonRawField(manifestText, "metrics_interval_s");
    std::vector<std::string> artifacts = jsonArtifacts(manifestText);

    Doc doc;
    doc.heading(1, "polca run report");
    std::vector<std::vector<std::string>> info;
    info.push_back({"command", command});
    if (!scenario.empty())
        info.push_back({"scenario", scenario});
    info.push_back({"config digest", digest});
    info.push_back({"seed", seed});
    info.push_back({"simulated duration (s)",
                    compactNumber(durationS)});
    info.push_back({"metrics interval (s)",
                    compactNumber(intervalS)});
    doc.table({"field", "value"}, info);

    keyValueSection(doc, "Run summary",
                    loadCsv(dir / "result.csv"),
                    /*recoveryKeys=*/false);
    timelineSection(doc, loadCsv(dir / "stats_interval.csv"));
    percentileSection(doc, "Percentiles",
                      loadCsv(dir / "metrics.csv"));
    keyValueSection(doc, "Recovery SLOs",
                    loadCsv(dir / "result.csv"),
                    /*recoveryKeys=*/true);
    violationsSection(doc, loadCsv(dir / "violations.csv"),
                      fs::exists(dir / "violations.csv"));
    csvSection(doc, "Topology rollup",
               loadCsv(dir / "domains.csv"));
    csvSection(doc, "Sweep comparison",
               loadCsv(dir / "summary.csv"));
    csvSection(doc, "Chaos campaign",
               loadCsv(dir / "chaos_summary.csv"));

    // Sweep runs: one percentile table per point artifact.
    for (const std::string &artifact : artifacts) {
        const std::string suffix = ".metrics.csv";
        if (artifact.size() <= suffix.size() ||
            artifact.compare(artifact.size() - suffix.size(),
                             suffix.size(), suffix) != 0)
            continue;
        std::string stem =
            artifact.substr(0, artifact.size() - suffix.size());
        percentileSection(doc, "Percentiles: " + stem,
                          loadCsv(dir / artifact));
    }

    doc.heading(2, "Artifacts");
    std::vector<std::vector<std::string>> inventory;
    for (const std::string &artifact : artifacts)
        inventory.push_back({artifact});
    if (!inventory.empty())
        doc.table({"file"}, inventory);

    std::string footer = tool.empty() ? std::string(kToolVersion)
                                      : tool;

    fs::path mdPath = dir / "report.md";
    {
        std::ofstream os(mdPath, std::ios::binary);
        if (!os) {
            out.error = "cannot write " + mdPath.string();
            return out;
        }
        os << "<!-- generated by " << footer
           << "; deterministic for a fixed run directory -->\n";
        os << doc.markdown();
        os << "---\n" << footer << " · config " << digest << "\n";
    }
    out.written.push_back(mdPath.string());

    fs::path htmlPath = dir / "report.html";
    {
        std::ofstream os(htmlPath, std::ios::binary);
        if (!os) {
            out.error = "cannot write " + htmlPath.string();
            return out;
        }
        os << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
           << "<meta charset=\"utf-8\">\n"
           << "<title>polca run report</title>\n"
           << "<style>" << kCss << "</style>\n</head>\n<body>\n"
           << doc.htmlBody() << "<footer>" << htmlEscape(footer)
           << " · config " << htmlEscape(digest)
           << "</footer>\n</body>\n</html>\n";
    }
    out.written.push_back(htmlPath.string());
    out.ok = true;
    return out;
}

} // namespace polca::obs
