#include "obs/log_histogram.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace polca::obs {

LogHistogram::LogHistogram(double minValue, double maxValue,
                           double relativeError)
    : minValue_(minValue), maxValue_(maxValue),
      relativeError_(relativeError)
{
    if (!(minValue > 0.0) || !(maxValue > minValue) ||
        !(relativeError > 0.0) || !(relativeError < 1.0)) {
        sim::panic("obs::LogHistogram: bad shape [", minValue, ", ",
                   maxValue, ") err ", relativeError);
    }
    growth_ = (1.0 + relativeError_) * (1.0 + relativeError_);
    invLogGrowth_ = 1.0 / std::log(growth_);
    auto span = static_cast<std::size_t>(std::ceil(
        std::log(maxValue_ / minValue_) * invLogGrowth_));
    // Underflow bucket at index 0, overflow bucket at the end.
    counts_.assign(span + 2, 0);
}

bool
LogHistogram::sameShape(const LogHistogram &other) const
{
    return minValue_ == other.minValue_ &&
        maxValue_ == other.maxValue_ &&
        relativeError_ == other.relativeError_;
}

std::size_t
LogHistogram::bucketFor(double value) const
{
    if (!(value >= minValue_))
        return 0;  // underflow: zero, negatives, NaN, sub-min
    if (value >= maxValue_)
        return counts_.size() - 1;
    auto index = static_cast<std::size_t>(
        std::log(value / minValue_) * invLogGrowth_);
    // log() rounding can land exactly on an edge; clamp into the
    // tracked range so in-range values never spill into overflow.
    return std::min(index + 1, counts_.size() - 2);
}

void
LogHistogram::add(double value)
{
    ++counts_[bucketFor(value)];
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void
LogHistogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

void
LogHistogram::merge(const LogHistogram &other)
{
    if (!sameShape(other)) {
        sim::panic("obs::LogHistogram::merge: shape mismatch ([",
                   minValue_, ", ", maxValue_, ") err ",
                   relativeError_, " vs [", other.minValue_, ", ",
                   other.maxValue_, ") err ", other.relativeError_,
                   ")");
    }
    for (std::size_t b = 0; b < counts_.size(); ++b)
        counts_[b] += other.counts_[b];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
LogHistogram::bucketLo(std::size_t b) const
{
    if (b == 0)
        return 0.0;
    if (b == counts_.size() - 1)
        return maxValue_;
    return minValue_ * std::pow(growth_, static_cast<double>(b - 1));
}

double
LogHistogram::bucketHi(std::size_t b) const
{
    if (b == 0)
        return minValue_;
    if (b == counts_.size() - 1)
        return std::numeric_limits<double>::infinity();
    return minValue_ * std::pow(growth_, static_cast<double>(b));
}

double
LogHistogram::bucketRepresentative(std::size_t b) const
{
    // Underflow/overflow report the exact tracked extremes: clamped
    // samples carry no in-bucket position, so the extremes are the
    // least-surprising (and single-sample-exact) answer.
    if (b == 0)
        return std::isfinite(min_) ? std::min(min_, minValue_) : 0.0;
    if (b == counts_.size() - 1)
        return std::isfinite(max_) ? max_ : maxValue_;
    return bucketLo(b) * (1.0 + relativeError_);
}

double
LogHistogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Nearest-rank: the smallest recorded value v such that at least
    // ceil(q * n) samples are <= v.
    auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    rank = std::clamp<std::uint64_t>(rank, 1, count_);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        seen += counts_[b];
        if (seen >= rank)
            return bucketRepresentative(b);
    }
    return bucketRepresentative(counts_.size() - 1);
}

} // namespace polca::obs
