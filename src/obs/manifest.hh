/**
 * @file
 * Per-run manifest: what produced the artifacts sitting next to it.
 *
 * Every run directory written by polcactl (single runs, sweeps, chaos
 * campaigns) gets a `manifest.json` recording the scenario path, a
 * digest of the fully-resolved configuration, the seed, job count,
 * simulated duration, tool version, and an inventory of the artifact
 * files the run produced.  `polcactl report` starts from the
 * manifest; humans diffing two runs start from the digest.
 *
 * Manifests contain no wall-clock timestamps or host identity — two
 * same-seed runs of the same binary write byte-identical manifests,
 * the same determinism contract as every other artifact.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace polca::obs {

/** Version string stamped into manifests and report footers. */
inline constexpr const char *kToolVersion = "polca-sim 0.7";

/** FNV-1a 64-bit hash of @p text as a 16-digit lowercase hex string;
 *  used to fingerprint resolved-config dumps. */
[[nodiscard]] std::string fnv1a64Hex(const std::string &text);

struct RunManifest
{
    std::string tool = kToolVersion;
    std::string command;       ///< "run", "sweep", or "chaos"
    std::string scenarioPath;  ///< as given on the CLI ("" if none)
    std::string configDigest;  ///< fnv1a64Hex of the resolved dump
    std::uint64_t seed = 0;
    int jobs = 1;
    double durationS = 0.0;
    double metricsIntervalS = 0.0;  ///< 0 = interval stats disabled
    /** Files the run wrote, relative to the manifest's directory. */
    std::vector<std::string> artifacts;

    /** Stable-key-order, human-diffable JSON. */
    void writeJson(std::ostream &os) const;
};

} // namespace polca::obs
