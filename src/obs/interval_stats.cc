#include "obs/interval_stats.hh"

#include <cstdio>
#include <ostream>

#include "analysis/csv.hh"
#include "core/contracts.hh"

namespace polca::obs {

namespace {

std::string
formatValue(MetricsRegistry::ScalarKind kind, double v)
{
    char buf[64];
    if (kind == MetricsRegistry::ScalarKind::Gauge)
        std::snprintf(buf, sizeof(buf), "%.6f", v);
    else
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
}

} // namespace

void
IntervalStats::snapshot(double timeS, const MetricsRegistry &registry)
{
    if (!rows_.empty()) {
        POLCA_CHECK(timeS >= rows_.back().timeS,
                    "snapshot time ", timeS,
                    " precedes last snapshot at ",
                    rows_.back().timeS);
        // The end-of-run partial snapshot coincides with the last
        // periodic firing when the cadence divides the duration.
        if (timeS == rows_.back().timeS)
            return;
    }

    Row row;
    row.timeS = timeS;
    registry.visitScalars([&](const std::string &name,
                              MetricsRegistry::ScalarKind kind,
                              double value) {
        kinds_[name] = kind;
        if (kind == MetricsRegistry::ScalarKind::Gauge) {
            row.values[name] = value;
        } else {
            // Cumulative scalar: report the per-interval delta.  A
            // metric first seen this interval has an implicit
            // baseline of 0.
            row.values[name] = value - prevCumulative_[name];
            prevCumulative_[name] = value;
        }
    });
    rows_.push_back(std::move(row));
}

void
IntervalStats::writeCsv(std::ostream &os) const
{
    analysis::CsvWriter writer(os);

    std::vector<std::string> header;
    header.reserve(kinds_.size() + 1);
    header.push_back("time_s");
    for (const auto &[name, kind] : kinds_)
        header.push_back(name);
    writer.header(header);

    for (const Row &row : rows_) {
        std::vector<std::string> cells;
        cells.reserve(header.size());
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6f", row.timeS);
        cells.emplace_back(buf);
        for (const auto &[name, kind] : kinds_) {
            auto it = row.values.find(name);
            double v = it == row.values.end() ? 0.0 : it->second;
            cells.push_back(formatValue(kind, v));
        }
        writer.rowStrings(cells);
    }
}

void
IntervalStats::clear()
{
    kinds_.clear();
    prevCumulative_.clear();
    rows_.clear();
}

} // namespace polca::obs
