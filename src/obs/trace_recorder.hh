/**
 * @file
 * Structured trace recorder for the POLCA control plane.
 *
 * Ring-buffered, sim-timestamped spans ("complete" events: cap
 * issue -> cap applied, breaker windup, fail-safe windows) and
 * instant events (brake engage, breaker trip, reading dropped),
 * exportable as Chrome trace_event JSON (load in chrome://tracing or
 * Perfetto; ticks are microseconds, which is exactly the `ts` unit)
 * and as CSV.
 *
 * Recording is gated by a category bitmask so a full oversubscription
 * sweep can trace only the control plane; with the mask at zero
 * (default) every record call is a single test-and-branch.  Event
 * names must be string literals (static storage): the recorder keeps
 * only the pointer.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace polca::obs {

/** Event categories (bitmask values). */
enum class TraceCategory : std::uint32_t
{
    Sim = 1u << 0,        ///< event-queue / kernel
    Telemetry = 1u << 1,  ///< row readings, drops
    Control = 1u << 2,    ///< manager decisions, OOB commands
    Power = 1u << 3,      ///< breaker windup / trips
    Cluster = 1u << 4,    ///< batches, dispatch
    Fault = 1u << 5,      ///< injected fault windows
};

constexpr std::uint32_t kAllTraceCategories = 0x3f;

const char *toString(TraceCategory category);

/** Parse "control,fault" / "all" into a mask; fatal() on unknown. */
std::uint32_t parseTraceCategories(const std::string &list);

/** One recorded event.  duration < 0 means an instant event. */
struct TraceEvent
{
    sim::Tick start = 0;
    sim::Tick duration = -1;
    const char *name = "";
    TraceCategory category = TraceCategory::Sim;
    std::int32_t track = 0;  ///< Chrome "tid": channel/server index
    double value = 0.0;      ///< free-form numeric argument
};

/**
 * Fixed-capacity ring buffer of TraceEvents; when full the oldest
 * events are overwritten (and counted), so a week-long run keeps the
 * most recent window instead of growing without bound.
 */
class TraceRecorder
{
  public:
    explicit TraceRecorder(std::size_t capacity = 1u << 16);

    /** Categories to record; 0 disables recording entirely. */
    void setCategoryMask(std::uint32_t mask) { mask_ = mask; }
    std::uint32_t categoryMask() const { return mask_; }

    bool enabled(TraceCategory category) const
    {
        return (mask_ & static_cast<std::uint32_t>(category)) != 0;
    }

    /** Record an instant event (@p name must be a string literal). */
    void instant(TraceCategory category, const char *name,
                 sim::Tick now, std::int32_t track = 0,
                 double value = 0.0);

    /** Record a span that ran [start, start + duration]. */
    void complete(TraceCategory category, const char *name,
                  sim::Tick start, sim::Tick duration,
                  std::int32_t track = 0, double value = 0.0);

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return buffer_.size(); }

    /** Events recorded over the recorder's lifetime. */
    std::uint64_t recorded() const { return recorded_; }

    /** Events overwritten because the ring was full. */
    std::uint64_t overwritten() const { return overwritten_; }

    /** Retained events, ordered by start time (ties: record order). */
    std::vector<TraceEvent> events() const;

    void clear();

    /** Chrome trace_event JSON ("X" complete / "i" instant phases). */
    void exportChromeJson(std::ostream &os) const;

    /** CSV: start_us,duration_us,name,category,track,value. */
    void exportCsv(std::ostream &os) const;

  private:
    void push(const TraceEvent &event);

    std::size_t capacity_;
    std::uint32_t mask_ = 0;
    std::vector<TraceEvent> buffer_;
    std::size_t head_ = 0;  ///< overwrite position once full
    std::uint64_t recorded_ = 0;
    std::uint64_t overwritten_ = 0;
};

} // namespace polca::obs

