/**
 * @file
 * Sim-time-cadenced registry snapshots (gem5 `dumpresetstats` style).
 *
 * An experiment arms a periodic task (Simulation::every) that calls
 * snapshot() on a fixed sim-time cadence; each snapshot records every
 * non-volatile scalar in the registry.  When the run ends the
 * collected rows are written as one columnar stats_interval.csv:
 *
 *     time_s,dispatcher.completed,manager.cap_commands,...
 *
 * Counters (and histogram sample counts) are reported as per-interval
 * *deltas* — the row at time T covers activity in (T_prev, T] — while
 * gauges are point *samples* at the snapshot instant.  The registry
 * itself is never reset, so the end-of-run cumulative dump is
 * unaffected and the column sums of the delta columns reconcile with
 * it exactly (the final row is a partial interval when the run length
 * is not a multiple of the cadence).
 *
 * All values derive from simulated state, so same-seed runs produce
 * byte-identical CSVs.
 */

#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace polca::obs {

class IntervalStats
{
  public:
    /**
     * Record one snapshot of @p registry at simulated time @p timeS.
     * Times must be strictly increasing; a snapshot at the same time
     * as the previous one is dropped (the end-of-run partial snapshot
     * coincides with the last periodic one when the cadence divides
     * the duration).
     */
    void snapshot(double timeS, const MetricsRegistry &registry);

    [[nodiscard]] bool empty() const { return rows_.empty(); }
    [[nodiscard]] std::size_t rows() const { return rows_.size(); }

    /** Time of the most recent snapshot; -1 when none taken yet. */
    [[nodiscard]] double lastTimeS() const
    {
        return rows_.empty() ? -1.0 : rows_.back().timeS;
    }

    /**
     * Write the collected snapshots as columnar CSV.  Columns are the
     * name-sorted union of every scalar seen across all snapshots; a
     * metric registered mid-run reports 0 for rows before it existed.
     */
    void writeCsv(std::ostream &os) const;

    /** Drop all collected rows and delta baselines. */
    void clear();

  private:
    struct Row
    {
        double timeS;
        std::map<std::string, double> values;
    };

    std::map<std::string, MetricsRegistry::ScalarKind> kinds_;
    std::map<std::string, double> prevCumulative_;
    std::vector<Row> rows_;
};

} // namespace polca::obs
