/**
 * @file
 * The observability context handed to instrumented components.
 *
 * One Observability object per experiment bundles the metrics
 * registry (always cheap, always on once attached) with the trace
 * recorder (off until a category mask is set).  Components accept a
 * nullable `Observability *` via attachObservability(); a null
 * context keeps every hot path free of instrumentation cost.
 *
 * Lifetime: the Observability must outlive the components attached
 * to it *and* any dump/export calls.  Components register gauge
 * sources that point back into themselves — call
 * metrics.freezeGauges() before the simulation objects go away
 * (core::runOversubExperiment does this for you).
 */

#pragma once

#include "obs/interval_stats.hh"
#include "obs/metrics.hh"
#include "obs/trace_recorder.hh"

namespace polca::obs {

struct Observability
{
    MetricsRegistry metrics;
    TraceRecorder trace;
    IntervalStats interval;

    Observability() = default;
    explicit Observability(std::size_t traceCapacity)
        : trace(traceCapacity)
    {}
};

} // namespace polca::obs

