/**
 * @file
 * Run-report generator behind `polcactl report <run-dir>`.
 *
 * Reads the artifacts a run directory holds — manifest.json,
 * metrics.csv, stats_interval.csv, result.csv, violations.csv,
 * summary.csv (sweeps), chaos_summary.csv (chaos campaigns) — and
 * writes two self-contained documents next to them:
 *
 *  - report.md    tables only, renders anywhere;
 *  - report.html  the same content plus an inline-SVG power/cap
 *                 timeline built from the interval stats.
 *
 * Everything is generated from the artifact bytes with fixed-width
 * formatting and no wall-clock or host state, so two same-seed runs
 * produce byte-identical reports (ctest-enforced).  Only the C++
 * standard library is used; missing optional artifacts simply drop
 * their section.
 */

#pragma once

#include <string>
#include <vector>

namespace polca::obs {

struct ReportResult
{
    bool ok = false;
    std::string error;                ///< set when !ok
    std::vector<std::string> written; ///< paths of emitted files
};

/**
 * Generate report.md + report.html inside @p runDir.  Fails (with a
 * message) when the directory has no manifest.json; every other
 * artifact is optional.
 */
ReportResult writeRunReport(const std::string &runDir);

} // namespace polca::obs
