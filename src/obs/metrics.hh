/**
 * @file
 * gem5-stats-flavoured metrics registry.
 *
 * Components register named counters, gauges, and fixed-bucket
 * histograms once (get-or-create: registering the same name twice
 * returns the same object, so per-server stats aggregate naturally)
 * and then update them through plain pointers — an update is an
 * integer add, cheap enough to stay on in every run.
 *
 * Dumps are deterministic: entries are stored name-sorted and all
 * values derive from simulated state, so two runs with the same seed
 * produce byte-identical dumps.  Wall-clock-derived gauges (e.g.
 * events/sec) must be marked volatile; they are skipped by dump().
 */

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/log_histogram.hh"

namespace polca::obs {

/** Monotonic event count. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    Counter &operator++()
    {
        ++value_;
        return *this;
    }
    Counter &operator+=(std::uint64_t n)
    {
        value_ += n;
        return *this;
    }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

    /** Adopt a snapshotted count (snapshot support). */
    void restore(std::uint64_t v) { value_ = v; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Point-in-time value.  Either set explicitly or backed by a source
 * callback evaluated at dump time (gem5 functor stats); sources are
 * snapshotted into plain values by MetricsRegistry::freezeGauges()
 * so a dump never calls into destroyed components.
 */
class Gauge
{
  public:
    using Source = std::function<double()>;

    void set(double v) { value_ = v; }
    void setSource(Source source) { source_ = std::move(source); }

    double value() const { return source_ ? source_() : value_; }

    /** Evaluate the source once and drop it. */
    void freeze()
    {
        if (source_) {
            value_ = source_();
            source_ = nullptr;
        }
    }

    /**
     * Volatile gauges hold wall-clock-derived values (events/sec);
     * dump() skips them so metric dumps stay reproducible across
     * runs with the same seed.
     */
    void setVolatile(bool v) { volatile_ = v; }
    bool isVolatile() const { return volatile_; }

    /** @return true when a live source callback is attached. */
    bool hasSource() const { return static_cast<bool>(source_); }

    /**
     * Zero the cached value.  A source-backed gauge is a *view* of
     * live component state, not an accumulator, so reset() leaves
     * the source attached and value() keeps reporting the live
     * reading — zeroing the shadowed cache would silently resurface
     * a stale 0.0 after freeze().  Interval snapshots therefore
     * treat every gauge as a point sample, never as a delta.
     */
    void reset()
    {
        if (!source_)
            value_ = 0.0;
    }

    /** Adopt a snapshotted value; a no-op on source-backed gauges,
     *  which are live views of (restored) component state. */
    void restoreValue(double v)
    {
        if (!source_)
            value_ = v;
    }

  private:
    double value_ = 0.0;
    Source source_;
    bool volatile_ = false;
};

/**
 * Fixed-bucket histogram over [lo, hi); out-of-range observations
 * clamp to the edge buckets.  Also tracks count/sum/min/max.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double value);
    void reset();

    double lo() const { return lo_; }
    double hi() const { return hi_; }
    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t bucketCount(std::size_t b) const
    {
        return counts_.at(b);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Name-keyed store of the three metric kinds.  Names are dotted
 * paths ("manager.cap_commands"); the registry must outlive every
 * component holding a pointer into it.
 */
class MetricsRegistry
{
  public:
    /** Get-or-create; panics if @p name exists with another kind. */
    [[nodiscard]] Counter &counter(const std::string &name,
                     const std::string &desc = "");
    [[nodiscard]] Gauge &gauge(const std::string &name,
                               const std::string &desc = "");

    /** Get-or-create; panics on kind or shape mismatch. */
    [[nodiscard]] Histogram &histogram(const std::string &name,
                                       double lo, double hi,
                         std::size_t buckets,
                         const std::string &desc = "");

    /** Get-or-create; panics on kind or shape mismatch. */
    [[nodiscard]] LogHistogram &
    logHistogram(const std::string &name, double minValue,
                 double maxValue, double relativeError,
                 const std::string &desc = "");

    [[nodiscard]] bool has(const std::string &name) const;
    [[nodiscard]] std::size_t size() const { return entries_.size(); }

    /** Zero every metric (registrations and gauge sources kept). */
    void reset();

    /**
     * Value snapshot of every metric, by name (snapshot support).
     * Counters and (log) histograms are captured whole; gauges only
     * when they hold a plain non-volatile value — source-backed
     * gauges are live views of component state and volatile gauges
     * are wall-clock-derived, so neither belongs in a snapshot.
     */
    struct Values
    {
        std::map<std::string, std::uint64_t> counters;
        std::map<std::string, double> gauges;
        std::map<std::string, Histogram> histograms;
        std::map<std::string, LogHistogram> logHistograms;
    };

    /** Capture every metric's current value (snapshot support). */
    [[nodiscard]] Values saveValues() const;

    /**
     * Restore snapshotted values into the already-registered metrics
     * of this registry.  Every saved name must exist here with the
     * same kind and shape (a branch registers the identical metric
     * set by rebuilding from the same configuration); extra
     * registrations are left untouched.
     */
    void restoreValues(const Values &values);

    /** Snapshot all gauge sources into plain values (call before the
     *  components backing the sources are destroyed). */
    void freezeGauges();

    /**
     * gem5-style text dump, name-sorted, one line per scalar.
     * Histograms expand to name::count/mean/min/max plus
     * self-describing name::bucketN[lo,hi) lines (bounds in the
     * name, count as the value); log histograms additionally emit
     * name::p50/p90/p95/p99/p99.9 percentile lines and skip empty
     * buckets.  Volatile gauges are skipped (reproducibility).
     */
    void dump(std::ostream &os) const;

    /** The same scalars as CSV: name,kind,value. */
    void dumpCsv(std::ostream &os) const;

    /** How a scalar reported by visitScalars() accumulates. */
    enum class ScalarKind
    {
        Counter,        ///< cumulative, monotone (delta-able)
        Gauge,          ///< point-in-time sample
        HistogramCount, ///< cumulative sample count of a histogram
    };

    /**
     * Visit every non-volatile scalar, name-sorted: counters and the
     * "::count" of each (log) histogram as cumulative values, gauges
     * as point samples.  The interval-stats snapshotter is the
     * intended consumer; unlike dump() this reports raw doubles.
     */
    void visitScalars(
        const std::function<void(const std::string &name,
                                 ScalarKind kind, double value)> &fn)
        const;

  private:
    struct Entry
    {
        std::string desc;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
        std::unique_ptr<LogHistogram> logHistogram;
    };

    /** Flattened (name, kind, value-string) rows for both dumps. */
    std::vector<std::array<std::string, 3>> flatten() const;

    std::map<std::string, Entry> entries_;
};

} // namespace polca::obs

