/**
 * @file
 * Error metrics for trace-fidelity validation: the paper validates its
 * synthetic trace against the production trace with MAPE <= 3 %
 * (Section 6.4).
 */

#pragma once

#include <vector>

#include "sim/timeseries.hh"

namespace polca::analysis {

/**
 * Mean Absolute Percentage Error between a reference and a candidate
 * vector.  Reference entries at (or below) zero are skipped; if all
 * are skipped the result is 0.  Returned as a fraction (0.03 = 3 %).
 */
double mape(const std::vector<double> &reference,
            const std::vector<double> &candidate);

/**
 * MAPE between two time series compared on a regular grid of period
 * @p dt over their overlapping extent.
 */
double mape(const sim::TimeSeries &reference,
            const sim::TimeSeries &candidate, sim::Tick dt);

/** Root-mean-square error between equal-length vectors. */
double rmse(const std::vector<double> &reference,
            const std::vector<double> &candidate);

} // namespace polca::analysis

