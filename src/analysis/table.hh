/**
 * @file
 * ASCII table rendering for benchmark harness output.  Every bench
 * binary prints the paper's rows/series through this formatter so the
 * reproductions are easy to eyeball against the paper.
 */

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace polca::analysis {

/**
 * Column-aligned text table.  Cells are strings; numeric helpers
 * format with fixed precision.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls fill it. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(std::string value);

    /** Append a numeric cell with @p precision fraction digits. */
    Table &cell(double value, int precision = 2);

    /** Append an integer cell. */
    Table &cell(long long value);

    /** Append a percentage cell ("12.3%") from a fraction. */
    Table &percentCell(double fraction, int precision = 1);

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numCols() const { return headers_.size(); }

    /** Cell text at (row, col); headers are not addressable. */
    const std::string &at(std::size_t row, std::size_t col) const;

    /** Render with padding and a header underline. */
    std::string str() const;

    /** Stream the rendered table. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision. */
std::string formatFixed(double value, int precision = 2);

/** Format a fraction as a percentage string. */
std::string formatPercent(double fraction, int precision = 1);

} // namespace polca::analysis

