#include "analysis/error_metrics.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace polca::analysis {

double
mape(const std::vector<double> &reference,
     const std::vector<double> &candidate)
{
    if (reference.size() != candidate.size()) {
        sim::panic("mape: length mismatch (", reference.size(), " vs ",
                   candidate.size(), ")");
    }
    double sum = 0.0;
    std::size_t used = 0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
        if (reference[i] <= 0.0)
            continue;
        sum += std::abs(candidate[i] - reference[i]) / reference[i];
        ++used;
    }
    return used ? sum / static_cast<double>(used) : 0.0;
}

double
mape(const sim::TimeSeries &reference, const sim::TimeSeries &candidate,
     sim::Tick dt)
{
    if (reference.empty() || candidate.empty())
        sim::panic("mape: empty time series");
    sim::Tick start = std::max(reference.startTime(),
                               candidate.startTime());
    sim::Tick end = std::min(reference.endTime(), candidate.endTime());
    if (end < start)
        sim::panic("mape: series do not overlap");

    std::vector<double> ref, cand;
    for (sim::Tick t = start; t <= end; t += dt) {
        ref.push_back(reference.valueAt(t));
        cand.push_back(candidate.valueAt(t));
    }
    return mape(ref, cand);
}

double
rmse(const std::vector<double> &reference,
     const std::vector<double> &candidate)
{
    if (reference.size() != candidate.size()) {
        sim::panic("rmse: length mismatch (", reference.size(), " vs ",
                   candidate.size(), ")");
    }
    if (reference.empty())
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
        double d = candidate[i] - reference[i];
        sum += d * d;
    }
    return std::sqrt(sum / static_cast<double>(reference.size()));
}

} // namespace polca::analysis
