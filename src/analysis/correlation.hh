/**
 * @file
 * Pearson correlation utilities used to reproduce the paper's GPU
 * counter correlation study (Figure 7).
 */

#pragma once

#include <string>
#include <vector>

namespace polca::analysis {

/**
 * Pearson correlation coefficient of two equal-length vectors.
 * Returns 0 when either vector has zero variance or fewer than two
 * samples (a degenerate correlation).
 */
double pearson(const std::vector<double> &x, const std::vector<double> &y);

/**
 * Named collection of equal-length signal columns with a pairwise
 * correlation matrix, mirroring the counter matrices of Figure 7.
 */
class CorrelationMatrix
{
  public:
    /** Add a named column; all columns must have equal length. */
    void addSignal(std::string name, std::vector<double> values);

    std::size_t numSignals() const { return names_.size(); }
    const std::vector<std::string> &names() const { return names_; }

    /** Pearson correlation between signals @p i and @p j. */
    double at(std::size_t i, std::size_t j) const;

    /** Full symmetric matrix (row-major). */
    std::vector<std::vector<double>> matrix() const;

  private:
    std::vector<std::string> names_;
    std::vector<std::vector<double>> columns_;
};

} // namespace polca::analysis

