/**
 * @file
 * Terminal line-chart rendering so the bench binaries can show the
 * *shape* of the paper's figures (power spikes, diurnal patterns)
 * directly in their stdout output.
 */

#pragma once

#include <string>
#include <vector>

#include "sim/timeseries.hh"

namespace polca::analysis {

/** Rendering options for asciiChart(). */
struct ChartOptions
{
    int width = 100;          ///< columns of plot area
    int height = 16;          ///< rows of plot area
    double yMin = 0.0;        ///< lower bound; NaN -> auto
    double yMax = 0.0;        ///< upper bound; use autoScale
    bool autoScale = true;    ///< derive bounds from the data
    std::string title;        ///< optional header line
    std::string yLabel;       ///< axis annotation
};

/**
 * Render a time series as an ASCII chart.  The series is resampled to
 * one column per character; each column shows the mean of its bucket.
 */
std::string asciiChart(const sim::TimeSeries &series,
                       const ChartOptions &options = {});

/**
 * Render several series on one chart; series i is drawn with the
 * i-th glyph of "*o+x#@".
 */
std::string asciiChart(
    const std::vector<const sim::TimeSeries *> &series,
    const std::vector<std::string> &labels,
    const ChartOptions &options = {});

/**
 * Render a horizontal bar chart: one labelled bar per value, scaled to
 * @p width characters at the maximum value.
 */
std::string asciiBars(const std::vector<std::string> &labels,
                      const std::vector<double> &values, int width = 60);

/** Right-align @p value into a field of @p width characters. */
std::string formatFixedWidth(double value, int width);

} // namespace polca::analysis

