#include "analysis/correlation.hh"

#include <cmath>

#include "sim/logging.hh"

namespace polca::analysis {

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.size() != y.size()) {
        sim::panic("pearson: length mismatch (", x.size(), " vs ",
                   y.size(), ")");
    }
    std::size_t n = x.size();
    if (n < 2)
        return 0.0;

    double mx = 0.0, my = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        mx += x[i];
        my += y[i];
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);

    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double dx = x[i] - mx;
        double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

void
CorrelationMatrix::addSignal(std::string name, std::vector<double> values)
{
    if (!columns_.empty() && values.size() != columns_.front().size()) {
        sim::panic("CorrelationMatrix: signal '", name, "' has ",
                   values.size(), " samples, expected ",
                   columns_.front().size());
    }
    names_.push_back(std::move(name));
    columns_.push_back(std::move(values));
}

double
CorrelationMatrix::at(std::size_t i, std::size_t j) const
{
    return pearson(columns_.at(i), columns_.at(j));
}

std::vector<std::vector<double>>
CorrelationMatrix::matrix() const
{
    std::size_t n = numSignals();
    std::vector<std::vector<double>> out(n, std::vector<double>(n, 1.0));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            double r = at(i, j);
            out[i][j] = r;
            out[j][i] = r;
        }
    }
    return out;
}

} // namespace polca::analysis
