#include "analysis/ascii_chart.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "sim/logging.hh"

namespace polca::analysis {

namespace {

constexpr const char *glyphs = "*o+x#@";

/** Bucket a series into per-column mean values. */
std::vector<double>
columnMeans(const sim::TimeSeries &series, sim::Tick start, sim::Tick end,
            int width)
{
    std::vector<double> sums(static_cast<std::size_t>(width), 0.0);
    std::vector<std::size_t> counts(static_cast<std::size_t>(width), 0);

    double span = static_cast<double>(end - start);
    for (const auto &p : series.points()) {
        if (p.time < start || p.time > end)
            continue;
        double t = span > 0.0
            ? static_cast<double>(p.time - start) / span : 0.0;
        auto col = static_cast<std::size_t>(
            std::min<double>(t * width, width - 1));
        sums[col] += p.value;
        ++counts[col];
    }

    std::vector<double> means(static_cast<std::size_t>(width),
                              std::numeric_limits<double>::quiet_NaN());
    double last = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t c = 0; c < means.size(); ++c) {
        if (counts[c] > 0) {
            means[c] = sums[c] / static_cast<double>(counts[c]);
            last = means[c];
        } else if (!std::isnan(last)) {
            means[c] = last;  // step-extend through empty columns
        }
    }
    return means;
}

} // namespace

std::string
asciiChart(const sim::TimeSeries &series, const ChartOptions &options)
{
    return asciiChart({&series}, {""}, options);
}

std::string
asciiChart(const std::vector<const sim::TimeSeries *> &series,
           const std::vector<std::string> &labels,
           const ChartOptions &options)
{
    if (series.empty())
        sim::panic("asciiChart: no series");
    if (labels.size() != series.size())
        sim::panic("asciiChart: labels/series size mismatch");

    sim::Tick start = sim::maxTick;
    sim::Tick end = 0;
    for (const auto *s : series) {
        if (!s || s->empty())
            sim::panic("asciiChart: null or empty series");
        start = std::min(start, s->startTime());
        end = std::max(end, s->endTime());
    }

    int width = std::max(options.width, 10);
    int height = std::max(options.height, 4);

    std::vector<std::vector<double>> cols;
    cols.reserve(series.size());
    for (const auto *s : series)
        cols.push_back(columnMeans(*s, start, end, width));

    double lo = options.yMin;
    double hi = options.yMax;
    if (options.autoScale) {
        lo = std::numeric_limits<double>::infinity();
        hi = -std::numeric_limits<double>::infinity();
        for (const auto &c : cols) {
            for (double v : c) {
                if (std::isnan(v))
                    continue;
                lo = std::min(lo, v);
                hi = std::max(hi, v);
            }
        }
        if (!(hi > lo)) {
            lo -= 0.5;
            hi += 0.5;
        }
        double pad = (hi - lo) * 0.05;
        lo -= pad;
        hi += pad;
    }
    if (!(hi > lo))
        hi = lo + 1.0;

    std::vector<std::string> grid(
        static_cast<std::size_t>(height),
        std::string(static_cast<std::size_t>(width), ' '));

    for (std::size_t s = 0; s < cols.size(); ++s) {
        char glyph = glyphs[s % 6];
        for (int c = 0; c < width; ++c) {
            double v = cols[s][static_cast<std::size_t>(c)];
            if (std::isnan(v))
                continue;
            double t = (v - lo) / (hi - lo);
            t = std::clamp(t, 0.0, 1.0);
            int r = static_cast<int>(t * (height - 1) + 0.5);
            grid[static_cast<std::size_t>(height - 1 - r)]
                [static_cast<std::size_t>(c)] = glyph;
        }
    }

    std::ostringstream oss;
    if (!options.title.empty())
        oss << options.title << '\n';

    bool anyLabel = false;
    for (const auto &l : labels)
        anyLabel = anyLabel || !l.empty();
    if (anyLabel) {
        oss << "  legend:";
        for (std::size_t s = 0; s < labels.size(); ++s)
            oss << "  [" << glyphs[s % 6] << "] " << labels[s];
        oss << '\n';
    }

    for (int r = 0; r < height; ++r) {
        double yv = hi - (hi - lo) * r / (height - 1);
        oss << formatFixedWidth(yv, 9) << " |"
            << grid[static_cast<std::size_t>(r)] << '\n';
    }
    oss << std::string(9, ' ') << " +" << std::string(
        static_cast<std::size_t>(width), '-') << '\n';
    oss << std::string(11, ' ') << "t=" << sim::ticksToSeconds(start)
        << "s" << std::string(static_cast<std::size_t>(
            std::max(0, width - 24)), ' ')
        << "t=" << sim::ticksToSeconds(end) << "s";
    if (!options.yLabel.empty())
        oss << "   [y: " << options.yLabel << "]";
    oss << '\n';
    return oss.str();
}

std::string
formatFixedWidth(double value, int width)
{
    std::ostringstream oss;
    oss.precision(3);
    oss << std::fixed << value;
    std::string s = oss.str();
    if (static_cast<int>(s.size()) < width)
        s = std::string(static_cast<std::size_t>(width) - s.size(), ' ') + s;
    return s;
}

std::string
asciiBars(const std::vector<std::string> &labels,
          const std::vector<double> &values, int width)
{
    if (labels.size() != values.size())
        sim::panic("asciiBars: labels/values size mismatch");

    double maxVal = 0.0;
    std::size_t maxLabel = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        maxVal = std::max(maxVal, values[i]);
        maxLabel = std::max(maxLabel, labels[i].size());
    }
    if (maxVal <= 0.0)
        maxVal = 1.0;

    std::ostringstream oss;
    for (std::size_t i = 0; i < values.size(); ++i) {
        std::string label = labels[i];
        label.resize(maxLabel, ' ');
        int n = static_cast<int>(values[i] / maxVal * width + 0.5);
        oss << label << " |" << std::string(
            static_cast<std::size_t>(std::max(n, 0)), '#')
            << ' ' << values[i] << '\n';
    }
    return oss.str();
}

} // namespace polca::analysis
