#include "analysis/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace polca::analysis {

std::string
formatFixed(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
formatPercent(double fraction, int precision)
{
    return formatFixed(fraction * 100.0, precision) + "%";
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        sim::panic("Table: no headers");
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(std::string value)
{
    if (rows_.empty())
        sim::panic("Table::cell before row()");
    if (rows_.back().size() >= headers_.size())
        sim::panic("Table::cell: row wider than header");
    rows_.back().push_back(std::move(value));
    return *this;
}

Table &
Table::cell(double value, int precision)
{
    return cell(formatFixed(value, precision));
}

Table &
Table::cell(long long value)
{
    return cell(std::to_string(value));
}

Table &
Table::percentCell(double fraction, int precision)
{
    return cell(formatPercent(fraction, precision));
}

const std::string &
Table::at(std::size_t row, std::size_t col) const
{
    return rows_.at(row).at(col);
}

std::string
Table::str() const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream oss;
    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            std::string text = c < cells.size() ? cells[c] : "";
            oss << std::left << std::setw(static_cast<int>(widths[c]))
                << text;
            if (c + 1 < headers_.size())
                oss << "  ";
        }
        oss << '\n';
    };

    emitRow(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    oss << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emitRow(row);
    return oss.str();
}

void
Table::print(std::ostream &os) const
{
    os << str();
}

} // namespace polca::analysis
