/**
 * @file
 * Minimal CSV reading/writing used for trace persistence and for
 * exporting bench series to plotting tools.
 */

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace polca::analysis {

/**
 * Streaming CSV writer.  The first call fixes the column count; later
 * rows must match it.
 */
class CsvWriter
{
  public:
    explicit CsvWriter(std::ostream &os) : os_(os) {}

    /** Emit the header row. */
    void header(const std::vector<std::string> &columns);

    /** Emit one data row (stringified doubles). */
    void row(const std::vector<double> &values);

    /** Emit one data row of raw strings (values are escaped). */
    void rowStrings(const std::vector<std::string> &values);

  private:
    void emit(const std::vector<std::string> &cells);

    std::ostream &os_;
    std::size_t columns_ = 0;
};

/**
 * Parse CSV text into rows of fields.  Handles quoted fields with
 * embedded commas, doubled quotes, and embedded newlines/CRs (a
 * quoted field may span lines); bare CRs outside quotes are treated
 * as part of CRLF row endings and swallowed.
 */
std::vector<std::vector<std::string>> parseCsv(const std::string &text);

/** Escape one CSV field: quoted when it contains a comma, quote,
 *  newline, or CR, with embedded quotes doubled.  Round-trips
 *  exactly through parseCsv(). */
std::string escapeCsvField(const std::string &field);

} // namespace polca::analysis

