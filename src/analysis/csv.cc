#include "analysis/csv.hh"

#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace polca::analysis {

std::string
escapeCsvField(const std::string &field)
{
    // CR must force quoting too: the parser swallows bare CRs (CRLF
    // row endings), so an unquoted embedded CR would not round-trip.
    bool needsQuote =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needsQuote)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::emit(const std::vector<std::string> &cells)
{
    if (columns_ == 0)
        columns_ = cells.size();
    if (cells.size() != columns_) {
        sim::panic("CsvWriter: row with ", cells.size(),
                   " cells, expected ", columns_);
    }
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            os_ << ',';
        os_ << escapeCsvField(cells[i]);
    }
    os_ << '\n';
}

void
CsvWriter::header(const std::vector<std::string> &columns)
{
    emit(columns);
}

void
CsvWriter::row(const std::vector<double> &values)
{
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values) {
        std::ostringstream oss;
        oss.precision(10);
        oss << v;
        cells.push_back(oss.str());
    }
    emit(cells);
}

void
CsvWriter::rowStrings(const std::vector<std::string> &values)
{
    emit(values);
}

std::vector<std::vector<std::string>>
parseCsv(const std::string &text)
{
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> current;
    std::string field;
    bool inQuotes = false;
    bool fieldStarted = false;

    auto endField = [&] {
        current.push_back(field);
        field.clear();
        fieldStarted = false;
    };
    auto endRow = [&] {
        if (fieldStarted || !current.empty()) {
            endField();
            rows.push_back(current);
            current.clear();
        }
    };

    for (std::size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        if (inQuotes) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    field += '"';
                    ++i;
                } else {
                    inQuotes = false;
                }
            } else {
                field += c;
            }
            fieldStarted = true;
        } else if (c == '"') {
            inQuotes = true;
            fieldStarted = true;
        } else if (c == ',') {
            endField();
            fieldStarted = true;  // next field exists even if empty
        } else if (c == '\n') {
            endRow();
        } else if (c == '\r') {
            // Swallow CR in CRLF.
        } else {
            field += c;
            fieldStarted = true;
        }
    }
    endRow();
    return rows;
}

} // namespace polca::analysis
