/**
 * @file
 * Static GPU device parameters.
 *
 * The catalog anchors to the hardware the paper profiles: NVIDIA
 * A100-40GB/80GB (DGX-A100) plus an H100 entry for the paper's
 * forward-looking discussion.  Power-model coefficients are calibrated
 * so the phase powers, troughs, and frequency-sensitivity the paper
 * reports are reproduced (see DESIGN.md "Model calibration anchors").
 */

#pragma once

#include <string>

#include "sim/types.hh"

namespace polca::power {

/**
 * Immutable description of one GPU model: electrical limits, clock
 * domains, and the coefficients of the analytic power model
 *
 *   P(f, a) = idle
 *           + a.compute * computeDynWatts * (f / maxClock)^computeExp
 *           + a.memory  * memoryDynWatts  * (f / maxClock)^memoryExp
 *
 * where `a` is the workload activity (see GpuActivity).  Compute
 * activity may exceed 1.0 to model the short above-TDP transients the
 * paper observes during prompt phases (Insight 4).
 */
struct GpuSpec
{
    std::string name;

    /** Thermal design power (the advertised board power), watts. */
    double tdpWatts;

    /** Idle draw, watts (paper: ~20 % of TDP for A100). */
    double idleWatts;

    /** SM clock domain, MHz. */
    double maxSmClockMhz;
    double baseSmClockMhz;
    double minSmClockMhz;

    /** Clock forced by the OOB power brake (paper: 288 MHz). */
    double powerBrakeClockMhz;

    /** Software power-cap range, watts (paper: 300-400 W on A100). */
    double minPowerCapWatts;
    double maxPowerCapWatts;

    /** Dynamic power at maximum clock and activity 1.0, watts. */
    double computeDynWatts;
    double memoryDynWatts;

    /** Clock-scaling exponents of the two dynamic components. */
    double computeClockExponent;
    double memoryClockExponent;

    /** HBM capacity, GB (drives how many GPUs a model needs). */
    double memoryGb;

    /** NVIDIA A100 80GB SXM (inference machine in the paper). */
    static GpuSpec a100_80gb();

    /** NVIDIA A100 40GB SXM (training machine in the paper). */
    static GpuSpec a100_40gb();

    /** NVIDIA H100 80GB SXM (Section 6.7 forward-looking entry). */
    static GpuSpec h100_80gb();

    /** Look up a spec by name; fatal() on unknown names. */
    static GpuSpec byName(const std::string &name);
};

} // namespace polca::power

