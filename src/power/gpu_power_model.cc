#include "power/gpu_power_model.hh"

#include <algorithm>
#include <cmath>

#include "core/contracts.hh"
#include "sim/logging.hh"

namespace polca::power {

GpuPowerModel::GpuPowerModel(GpuSpec spec)
    : spec_(std::move(spec)), capThrottleClockMhz_(spec_.maxSmClockMhz)
{
    if (spec_.tdpWatts <= 0.0 || spec_.maxSmClockMhz <= 0.0)
        sim::fatal("GpuPowerModel: invalid spec '", spec_.name, "'");
}

void
GpuPowerModel::setActivity(const GpuActivity &activity)
{
    POLCA_CHECK(activity.compute >= 0.0 && activity.memory >= 0.0,
                "negative activity (", activity.compute, ", ",
                activity.memory, ")");
    activity_ = activity;
}

void
GpuPowerModel::lockClock(double mhz)
{
    lockedClockMhz_ = std::clamp(mhz, spec_.minSmClockMhz,
                                 spec_.maxSmClockMhz);
}

void
GpuPowerModel::unlockClock()
{
    lockedClockMhz_ = 0.0;
}

void
GpuPowerModel::setPowerCap(double watts)
{
    capWatts_ = std::clamp(watts, spec_.minPowerCapWatts,
                           spec_.maxPowerCapWatts);
}

void
GpuPowerModel::clearPowerCap()
{
    capWatts_ = 0.0;
    capThrottleClockMhz_ = spec_.maxSmClockMhz;
}

void
GpuPowerModel::setPowerBrake(bool engaged)
{
    brakeEngaged_ = engaged;
}

double
GpuPowerModel::targetClockMhz() const
{
    return clockLocked() ? lockedClockMhz_ : spec_.maxSmClockMhz;
}

double
GpuPowerModel::effectiveClockMhz() const
{
    if (brakeEngaged_)
        return spec_.powerBrakeClockMhz;
    return std::min(targetClockMhz(), capThrottleClockMhz_);
}

double
GpuPowerModel::powerAtClock(double mhz) const
{
    double ratio = std::clamp(mhz / spec_.maxSmClockMhz, 0.0, 1.0);
    double compute = activity_.compute * spec_.computeDynWatts *
        std::pow(ratio, spec_.computeClockExponent);
    double memory = activity_.memory * spec_.memoryDynWatts *
        std::pow(ratio, spec_.memoryClockExponent);
    return spec_.idleWatts + compute + memory;
}

double
GpuPowerModel::powerWatts() const
{
    return powerAtClock(effectiveClockMhz());
}

void
GpuPowerModel::stepCapController()
{
    if (!powerCapped()) {
        capThrottleClockMhz_ = spec_.maxSmClockMhz;
        return;
    }

    double p = powerWatts();
    double clock = effectiveClockMhz();
    if (brakeEngaged_)
        return;  // brake overrides; nothing to adjust

    if (p > capWatts_) {
        // Throttle proportionally to the overshoot, at most 12 % per
        // control period.  Reacting takes a few periods, which is why
        // prompt spikes escape the cap (Fig 9b).
        double scale = std::max(capWatts_ / p, 0.88);
        capThrottleClockMhz_ = std::max(clock * scale,
                                        spec_.minSmClockMhz);
    } else if (p < capWatts_ * 0.97 &&
               capThrottleClockMhz_ < targetClockMhz()) {
        // Recover slowly (3 % per period) to avoid oscillation; this
        // is the reactive lag that makes capping "less precise" than
        // locking (Section 3.2).
        capThrottleClockMhz_ = std::min(
            capThrottleClockMhz_ * 1.03, targetClockMhz());
    }
}

double
GpuPowerModel::slowdownFactor(double computeBoundFraction) const
{
    POLCA_CHECK(computeBoundFraction >= 0.0 &&
                    computeBoundFraction <= 1.0,
                "compute-bound fraction ", computeBoundFraction,
                " outside [0,1]");
    double f = effectiveClockMhz();
    double ratio = spec_.maxSmClockMhz / f;
    return computeBoundFraction * ratio + (1.0 - computeBoundFraction);
}

} // namespace polca::power
