#include "power/server_model.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace polca::power {

ServerSpec
ServerSpec::dgxA100_80gb()
{
    ServerSpec spec;
    spec.name = "DGX-A100-80GB";
    spec.gpu = GpuSpec::a100_80gb();
    spec.numGpus = 8;
    spec.ratedPowerWatts = 6500.0;
    // Host calibrated so the observed peak is ~5700 W and GPUs are
    // ~60 % of server draw under load (Insight 8).
    spec.hostIdleWatts = 900.0;
    spec.hostGpuTrackingFactor = 0.47;
    // Figure 3 provisioned breakdown: ~50 % GPUs, ~25 % fans.
    spec.provisionedFansWatts = 1625.0;
    spec.provisionedCpuWatts = 700.0;
    spec.provisionedMemoryWatts = 450.0;
    spec.provisionedOtherWatts = 525.0;
    return spec;
}

ServerSpec
ServerSpec::dgxA100_40gb()
{
    ServerSpec spec = dgxA100_80gb();
    spec.name = "DGX-A100-40GB";
    spec.gpu = GpuSpec::a100_40gb();
    return spec;
}

ServerSpec
ServerSpec::dgxH100()
{
    ServerSpec spec;
    spec.name = "DGX-H100";
    spec.gpu = GpuSpec::h100_80gb();
    spec.numGpus = 8;
    spec.ratedPowerWatts = 10200.0;
    spec.hostIdleWatts = 1300.0;
    spec.hostGpuTrackingFactor = 0.45;
    spec.provisionedFansWatts = 2500.0;
    spec.provisionedCpuWatts = 1100.0;
    spec.provisionedMemoryWatts = 500.0;
    spec.provisionedOtherWatts = 500.0;
    return spec;
}

double
ServerSpec::provisionedGpuWatts() const
{
    return static_cast<double>(numGpus) * gpu.tdpWatts;
}

std::vector<std::pair<std::string, double>>
ServerSpec::provisionedBreakdown() const
{
    return {
        {"GPUs", provisionedGpuWatts()},
        {"Fans", provisionedFansWatts},
        {"CPUs", provisionedCpuWatts},
        {"Memory", provisionedMemoryWatts},
        {"Other", provisionedOtherWatts},
    };
}

ServerModel::ServerModel(ServerSpec spec)
    : spec_(std::move(spec))
{
    if (spec_.numGpus == 0)
        sim::fatal("ServerModel: server '", spec_.name, "' has no GPUs");
    gpus_.reserve(spec_.numGpus);
    for (std::size_t i = 0; i < spec_.numGpus; ++i)
        gpus_.emplace_back(spec_.gpu);
}

double
ServerModel::gpuPowerWatts() const
{
    double total = 0.0;
    for (const auto &gpu : gpus_)
        total += gpu.powerWatts();
    return total;
}

double
ServerModel::hostPowerWatts() const
{
    double gpuIdle = static_cast<double>(gpus_.size()) *
        spec_.gpu.idleWatts;
    double gpuDynamic = std::max(0.0, gpuPowerWatts() - gpuIdle);
    return spec_.hostIdleWatts +
        spec_.hostGpuTrackingFactor * gpuDynamic;
}

double
ServerModel::powerWatts() const
{
    return hostPowerWatts() + gpuPowerWatts();
}

void
ServerModel::setActivityAll(const GpuActivity &activity)
{
    for (auto &gpu : gpus_)
        gpu.setActivity(activity);
}

void
ServerModel::lockClockAll(double mhz)
{
    for (auto &gpu : gpus_)
        gpu.lockClock(mhz);
}

void
ServerModel::unlockClockAll()
{
    for (auto &gpu : gpus_)
        gpu.unlockClock();
}

void
ServerModel::setPowerCapAll(double watts)
{
    for (auto &gpu : gpus_)
        gpu.setPowerCap(watts);
}

void
ServerModel::clearPowerCapAll()
{
    for (auto &gpu : gpus_)
        gpu.clearPowerCap();
}

void
ServerModel::setPowerBrakeAll(bool engaged)
{
    for (auto &gpu : gpus_)
        gpu.setPowerBrake(engaged);
}

void
ServerModel::stepCapControllers()
{
    for (auto &gpu : gpus_)
        gpu.stepCapController();
}

double
ServerModel::worstSlowdownFactor(double computeBoundFraction) const
{
    double worst = 1.0;
    for (const auto &gpu : gpus_)
        worst = std::max(worst, gpu.slowdownFactor(computeBoundFraction));
    return worst;
}

} // namespace polca::power
