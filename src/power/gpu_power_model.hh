/**
 * @file
 * Behavioural model of one GPU: activity-driven power draw plus the
 * three control knobs the paper characterizes — frequency locking,
 * reactive power capping, and the OOB power brake (Section 3.2).
 */

#pragma once

#include "power/gpu_spec.hh"
#include "sim/types.hh"

namespace polca::power {

/**
 * Workload activity on a GPU, set by the LLM phase models.
 * Components are utilization factors; compute may exceed 1.0 to model
 * short above-TDP bursts (prompt phases, Insight 4).
 */
struct GpuActivity
{
    double compute = 0.0;   ///< SM + tensor pipe activity
    double memory = 0.0;    ///< HBM bandwidth activity

    static GpuActivity idle() { return {0.0, 0.0}; }
};

/**
 * One GPU's power state machine.
 *
 * Knob semantics mirror the paper:
 *  - lockClock(): in-band frequency locking; always active, reduces
 *    power unconditionally (Insight 3/7).
 *  - setPowerCap(): reactive capping; a periodic on-device controller
 *    (stepCapController()) throttles the clock only after measured
 *    power exceeds the cap, so short prompt spikes overshoot the cap
 *    (Fig 9b) while sustained phases settle under it.
 *  - setPowerBrake(): OOB emergency brake that slams the clock to
 *    powerBrakeClockMhz (paper: 288 MHz, ~5 s actuation modelled at
 *    the telemetry layer).
 *
 * The effective clock is min(locked clock, cap-throttle clock), or the
 * brake clock when the brake is engaged.
 */
class GpuPowerModel
{
  public:
    explicit GpuPowerModel(GpuSpec spec);

    const GpuSpec &spec() const { return spec_; }

    /** @name Workload interface */
    /** @{ */
    /** Set current activity (held until the next change). */
    void setActivity(const GpuActivity &activity);
    const GpuActivity &activity() const { return activity_; }
    /** @} */

    /** @name Control knobs */
    /** @{ */
    /** Lock the SM clock to @p mhz (clamped to the legal range). */
    void lockClock(double mhz);

    /** Remove a frequency lock. */
    void unlockClock();

    bool clockLocked() const { return lockedClockMhz_ > 0.0; }
    double lockedClockMhz() const { return lockedClockMhz_; }

    /** Set a software power cap in watts (clamped to the cap range). */
    void setPowerCap(double watts);

    /** Remove the power cap (reverts to the TDP default). */
    void clearPowerCap();

    bool powerCapped() const { return capWatts_ > 0.0; }
    double powerCapWatts() const { return capWatts_; }

    /** Engage/release the OOB power brake. */
    void setPowerBrake(bool engaged);
    bool powerBrake() const { return brakeEngaged_; }
    /** @} */

    /** Clock actually applied after all knobs, MHz. */
    double effectiveClockMhz() const;

    /** Instantaneous power draw at the current activity/clock. */
    double powerWatts() const;

    /** Power that the current activity would draw at clock @p mhz. */
    double powerAtClock(double mhz) const;

    /**
     * Advance the reactive cap controller by one control period.
     * Call every capControlPeriod() ticks; no-op without a cap.
     * Throttles quickly when over the cap, recovers slowly when
     * under it (the asymmetry that causes cap overshoot and the
     * performance variability of Insight 3).
     */
    void stepCapController();

    /** Period of the on-device cap control loop (25 ms). */
    static sim::Tick capControlPeriod() { return sim::msToTicks(25); }

    /**
     * Workload slowdown at the effective clock relative to the
     * maximum clock, for a phase whose compute-bound fraction is
     * @p computeBoundFraction: memory-bound phases barely slow down
     * when the SM clock drops (Insight 7).
     *
     * @return multiplier >= 1 on phase duration.
     */
    double slowdownFactor(double computeBoundFraction) const;

  private:
    /** Clock ceiling requested by lock (or max when unlocked). */
    double targetClockMhz() const;

    GpuSpec spec_;
    GpuActivity activity_;
    double lockedClockMhz_ = 0.0;   ///< 0 = unlocked
    double capWatts_ = 0.0;         ///< 0 = uncapped
    double capThrottleClockMhz_;    ///< cap controller's clock ceiling
    bool brakeEngaged_ = false;
};

} // namespace polca::power

