#include "power/gpu_spec.hh"

#include "sim/logging.hh"

namespace polca::power {

GpuSpec
GpuSpec::a100_80gb()
{
    GpuSpec spec;
    spec.name = "A100-80GB";
    spec.tdpWatts = 400.0;
    spec.idleWatts = 80.0;
    spec.maxSmClockMhz = 1410.0;
    spec.baseSmClockMhz = 1275.0;
    spec.minSmClockMhz = 210.0;
    spec.powerBrakeClockMhz = 288.0;
    spec.minPowerCapWatts = 300.0;
    spec.maxPowerCapWatts = 400.0;
    // Calibrated so: prompt (compute 1.05, memory 0.5) ~= 1.05 TDP,
    // token (compute 0.35, memory 0.9) ~= 0.65 TDP, and the 1.1 GHz
    // lock reclaims ~20 % of peak power (Fig 10).
    spec.computeDynWatts = 280.0;
    spec.memoryDynWatts = 91.0;
    spec.computeClockExponent = 1.35;
    spec.memoryClockExponent = 0.30;
    spec.memoryGb = 80.0;
    return spec;
}

GpuSpec
GpuSpec::a100_40gb()
{
    GpuSpec spec = a100_80gb();
    spec.name = "A100-40GB";
    spec.memoryGb = 40.0;
    return spec;
}

GpuSpec
GpuSpec::h100_80gb()
{
    GpuSpec spec;
    spec.name = "H100-80GB";
    spec.tdpWatts = 700.0;
    spec.idleWatts = 120.0;
    spec.maxSmClockMhz = 1980.0;
    spec.baseSmClockMhz = 1590.0;
    spec.minSmClockMhz = 210.0;
    spec.powerBrakeClockMhz = 345.0;
    spec.minPowerCapWatts = 350.0;
    spec.maxPowerCapWatts = 700.0;
    spec.computeDynWatts = 505.0;
    spec.memoryDynWatts = 160.0;
    spec.computeClockExponent = 1.35;
    spec.memoryClockExponent = 0.30;
    spec.memoryGb = 80.0;
    return spec;
}

GpuSpec
GpuSpec::byName(const std::string &name)
{
    if (name == "A100-80GB")
        return a100_80gb();
    if (name == "A100-40GB")
        return a100_40gb();
    if (name == "H100-80GB")
        return h100_80gb();
    sim::fatal("GpuSpec::byName: unknown GPU '", name, "'");
}

} // namespace polca::power
