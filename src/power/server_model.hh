/**
 * @file
 * GPU server (DGX-class) power model: eight GPU power models plus a
 * host-side component (CPUs, fans, memory, storage) so that GPU power
 * lands at ~60 % of server draw under load (Insight 8) and the
 * provisioned-power breakdown of Figure 3 is reproducible.
 */

#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "power/gpu_power_model.hh"
#include "power/gpu_spec.hh"

namespace polca::power {

/**
 * Static server parameters.  Defaults model the paper's DGX A100:
 * 6500 W rated, ~50 % of provisioned power for GPUs, ~25 % for fans,
 * and an observed all-workload peak of ~5700 W (Section 5, derating).
 */
struct ServerSpec
{
    std::string name;
    GpuSpec gpu;
    std::size_t numGpus;

    /** Rated (provisioned) power, watts. */
    double ratedPowerWatts;

    /** Host power at idle (CPUs, fans at floor, memory, storage). */
    double hostIdleWatts;

    /**
     * Host power above idle per watt of GPU power above GPU idle:
     * fans, VR losses, and CPU feed all track how hard the GPUs are
     * drawing.  This coupling is what lets GPU frequency capping
     * reclaim host power too.
     */
    double hostGpuTrackingFactor;

    /** Provisioned power per fan/CPU/memory/other bucket (Fig 3). */
    double provisionedFansWatts;
    double provisionedCpuWatts;
    double provisionedMemoryWatts;
    double provisionedOtherWatts;

    /** The paper's DGX A100 with 8x A100-80GB (inference machine). */
    static ServerSpec dgxA100_80gb();

    /** The paper's DGX A100 with 8x A100-40GB (training machine). */
    static ServerSpec dgxA100_40gb();

    /** DGX H100 (10.2 kW, Section 6.7). */
    static ServerSpec dgxH100();

    /** Provisioned GPU power = numGpus * gpu TDP. */
    double provisionedGpuWatts() const;

    /**
     * Figure 3 breakdown: (component, provisioned watts) pairs.
     * Sums to ratedPowerWatts.
     */
    std::vector<std::pair<std::string, double>>
    provisionedBreakdown() const;
};

/**
 * A live server: owns its GPUs and derives total electrical draw.
 */
class ServerModel
{
  public:
    explicit ServerModel(ServerSpec spec);

    const ServerSpec &spec() const { return spec_; }

    std::size_t numGpus() const { return gpus_.size(); }
    GpuPowerModel &gpu(std::size_t i) { return gpus_.at(i); }
    const GpuPowerModel &gpu(std::size_t i) const { return gpus_.at(i); }

    /** Sum of instantaneous GPU power, watts. */
    double gpuPowerWatts() const;

    /** Host-side power: idle + tracking factor x GPU dynamic
     *  power. */
    double hostPowerWatts() const;

    /** Total server draw, watts. */
    double powerWatts() const;

    /** @name Fleet-wide control conveniences */
    /** @{ */
    void setActivityAll(const GpuActivity &activity);
    void lockClockAll(double mhz);
    void unlockClockAll();
    void setPowerCapAll(double watts);
    void clearPowerCapAll();
    void setPowerBrakeAll(bool engaged);
    void stepCapControllers();
    /** @} */

    /**
     * Slowdown factor of the *slowest* GPU for a phase with the given
     * compute-bound fraction; tensor-parallel inference advances at
     * the pace of its slowest shard.
     */
    double worstSlowdownFactor(double computeBoundFraction) const;

  private:
    ServerSpec spec_;
    std::vector<GpuPowerModel> gpus_;
};

} // namespace polca::power

