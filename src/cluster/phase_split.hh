/**
 * @file
 * Phase-splitting deployment (Section 5.2 / Splitwise): prompt
 * computation and token generation run on *different* servers.
 * Prompt machines stay at full clock for the compute-heavy bursts;
 * token machines run permanently frequency-locked, flattening the
 * fleet's power profile.  The KV-cache is shipped between stages
 * over the cluster interconnect, adding a size-dependent transfer
 * delay.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cluster/inference_server.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "workload/trace.hh"

namespace polca::cluster {

/** Phase-split deployment parameters. */
struct PhaseSplitConfig
{
    power::ServerSpec serverSpec = power::ServerSpec::dgxA100_80gb();
    std::string modelName = "BLOOM-176B";

    /** Pool sizes.  Prompt work is a few percent of request time, so
     *  a small prompt pool feeds a large token pool. */
    int promptServers = 2;
    int tokenServers = 10;

    /** Token machines run locked at this SM clock (0 = unlocked);
     *  their phase is memory bound, so deep locks are cheap. */
    double tokenClockMhz = 1110.0;

    /** KV-cache transfer time between stages, ms per 1000 prompt
     *  tokens (high-bandwidth Infiniband, Section 5.2). */
    double transferMsPerKtoken = 80.0;

    std::size_t bufferSize = 1;
};

/**
 * Coordinator for a phase-split cell: routes arrivals to the prompt
 * pool, ships finished prompts (after the KV transfer delay) to the
 * token pool, and reports end-to-end latency against the original
 * arrival times.
 */
class PhaseSplitCluster
{
  public:
    PhaseSplitCluster(sim::Simulation &sim, PhaseSplitConfig config,
                      sim::Rng rng);

    const PhaseSplitConfig &config() const { return config_; }

    /** Schedule a trace's arrivals (trace must outlive the run). */
    void injectTrace(const workload::Trace &trace);

    /** Instantaneous power of both pools, watts. */
    double powerWatts() const;

    /** End-to-end latency (seconds) of fully completed requests. */
    const sim::Sampler &latencySeconds() const { return latency_; }

    std::uint64_t completions() const { return completions_; }

    /** Servers (prompt pool first, then token pool). */
    std::vector<InferenceServer *> servers();

    int numServers() const
    {
        return config_.promptServers + config_.tokenServers;
    }

  private:
    void arrive(const workload::Trace &trace, std::size_t index);
    void routePrompt(const workload::Request &request);
    void routeToken(const workload::Request &request);
    InferenceServer *pick(std::vector<std::unique_ptr<InferenceServer>> &pool);
    void drain(std::deque<workload::Request> &queue,
               std::vector<std::unique_ptr<InferenceServer>> &pool,
               bool tokenStage);

    sim::Simulation &sim_;
    PhaseSplitConfig config_;
    llm::ModelSpec model_;
    sim::Rng rng_;
    std::vector<std::unique_ptr<InferenceServer>> promptPool_;
    std::vector<std::unique_ptr<InferenceServer>> tokenPool_;
    std::deque<workload::Request> promptQueue_;
    std::deque<workload::Request> tokenQueue_;
    sim::Sampler latency_;
    std::uint64_t completions_ = 0;
};

} // namespace polca::cluster

