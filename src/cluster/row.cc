#include "cluster/row.hh"

#include <cmath>

#include "cluster/allocator.hh"
#include "sim/logging.hh"

namespace polca::cluster {

Row::Row(sim::Simulation &sim, RowConfig config, sim::Rng rng)
    : sim_(sim), config_(std::move(config)),
      model_(config_.modelOverride
                 ? *config_.modelOverride
                 : llm::ModelCatalog().byName(config_.modelName))
{
    ownedDomain_ =
        std::make_unique<PowerDomain>(sim_, domainOptions("row"));
    domain_ = ownedDomain_.get();
    populate(rng);
}

Row::Row(sim::Simulation &sim, RowConfig config, sim::Rng rng,
         PowerDomain &parent, std::string name)
    : sim_(sim), config_(std::move(config)),
      model_(config_.modelOverride
                 ? *config_.modelOverride
                 : llm::ModelCatalog().byName(config_.modelName))
{
    domain_ = &parent.addChild(domainOptions(std::move(name)));
    populate(rng);
}

PowerDomain::Options
Row::domainOptions(std::string name) const
{
    if (config_.baseServers <= 0)
        sim::fatal("Row: non-positive base server count");
    if (config_.addedServerFraction < 0.0)
        sim::fatal("Row: negative added-server fraction");

    PowerDomain::Options options;
    options.name = std::move(name);
    options.level = DomainLevel::Row;
    options.budgetWatts =
        config_.provisionedPerServerWatts * config_.baseServers;
    options.telemetryInterval = config_.telemetryInterval;
    options.recordSeries = config_.recordPowerSeries;
    return options;
}

void
Row::populate(sim::Rng &rng)
{
    int total = config_.baseServers + static_cast<int>(std::lround(
        config_.addedServerFraction * config_.baseServers));

    dispatcher_ = std::make_unique<Dispatcher>(sim_, rng.fork(0x0d15));
    if (config_.telemetryDropoutProbability > 0.0) {
        domain_->manager()->setDropoutProbability(
            config_.telemetryDropoutProbability, rng.fork(0xD80));
    }

    std::vector<workload::Priority> priorities =
        allocatePriorities(total, config_.lpServerFraction);

    for (int i = 0; i < total; ++i) {
        auto server = std::make_unique<InferenceServer>(
            sim_, config_.serverSpec, model_,
            priorities[static_cast<std::size_t>(i)], i,
            config_.bufferSize);
        if (config_.phaseAwareTokenClockMhz > 0.0) {
            server->setPhaseAwareTokenClock(
                config_.phaseAwareTokenClockMhz);
        }
        if (config_.maxBatchSize > 1)
            server->setMaxBatchSize(config_.maxBatchSize);
        dispatcher_->addServer(server.get());
        domain_->addServer(std::move(server),
                           config_.provisionedPerServerWatts);
    }
    domain_->finalize();
}

void
Row::setPowerScaleFactor(double factor)
{
    for (InferenceServer *server : domain_->servers())
        server->setPowerScaleFactor(factor);
}

} // namespace polca::cluster
