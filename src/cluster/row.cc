#include "cluster/row.hh"

#include <cmath>

#include "cluster/allocator.hh"
#include "sim/logging.hh"

namespace polca::cluster {

Row::Row(sim::Simulation &sim, RowConfig config, sim::Rng rng)
    : sim_(sim), config_(std::move(config)),
      model_(config_.modelOverride
                 ? *config_.modelOverride
                 : llm::ModelCatalog().byName(config_.modelName))
{
    if (config_.baseServers <= 0)
        sim::fatal("Row: non-positive base server count");
    if (config_.addedServerFraction < 0.0)
        sim::fatal("Row: negative added-server fraction");

    int total = config_.baseServers + static_cast<int>(std::lround(
        config_.addedServerFraction * config_.baseServers));

    dispatcher_ = std::make_unique<Dispatcher>(sim_, rng.fork(0x0d15));
    rowManager_ = std::make_unique<telemetry::RowManager>(
        sim_, config_.telemetryInterval, config_.recordPowerSeries);
    if (config_.telemetryDropoutProbability > 0.0) {
        rowManager_->setDropoutProbability(
            config_.telemetryDropoutProbability, rng.fork(0xD80));
    }

    std::vector<workload::Priority> priorities =
        allocatePriorities(total, config_.lpServerFraction);

    servers_.reserve(static_cast<std::size_t>(total));
    for (int i = 0; i < total; ++i) {
        auto server = std::make_unique<InferenceServer>(
            sim_, config_.serverSpec, model_,
            priorities[static_cast<std::size_t>(i)], i,
            config_.bufferSize);
        if (config_.phaseAwareTokenClockMhz > 0.0) {
            server->setPhaseAwareTokenClock(
                config_.phaseAwareTokenClockMhz);
        }
        if (config_.maxBatchSize > 1)
            server->setMaxBatchSize(config_.maxBatchSize);
        dispatcher_->addServer(server.get());
        InferenceServer *raw = server.get();
        rowManager_->addSource([raw] { return raw->powerWatts(); });
        servers_.push_back(std::move(server));
    }
    rowManager_->start();
}

double
Row::provisionedWatts() const
{
    return config_.provisionedPerServerWatts * config_.baseServers;
}

std::vector<InferenceServer *>
Row::servers()
{
    std::vector<InferenceServer *> out;
    out.reserve(servers_.size());
    for (auto &server : servers_)
        out.push_back(server.get());
    return out;
}

std::vector<InferenceServer *>
Row::pool(workload::Priority priority)
{
    std::vector<InferenceServer *> out;
    for (auto &server : servers_) {
        if (server->pool() == priority)
            out.push_back(server.get());
    }
    return out;
}

double
Row::powerWatts() const
{
    double total = 0.0;
    for (const auto &server : servers_)
        total += server->powerWatts();
    return total;
}

void
Row::setPowerScaleFactor(double factor)
{
    for (auto &server : servers_)
        server->setPowerScaleFactor(factor);
}

} // namespace polca::cluster
