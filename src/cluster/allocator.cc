#include "cluster/allocator.hh"

#include <cmath>

#include "sim/logging.hh"

namespace polca::cluster {

std::vector<workload::Priority>
allocatePriorities(int num_servers, double lp_fraction)
{
    if (num_servers <= 0)
        sim::fatal("allocatePriorities: non-positive server count");
    if (lp_fraction < 0.0 || lp_fraction > 1.0)
        sim::fatal("allocatePriorities: fraction ", lp_fraction,
                   " outside [0,1]");

    int lp = static_cast<int>(
        std::lround(lp_fraction * num_servers));
    std::vector<workload::Priority> out(
        static_cast<std::size_t>(num_servers),
        workload::Priority::High);

    // Bresenham-style even spread of LP slots.
    int error = num_servers / 2;
    for (int i = 0; i < num_servers && lp > 0; ++i) {
        error -= lp;
        if (error < 0) {
            out[static_cast<std::size_t>(i)] = workload::Priority::Low;
            error += num_servers;
        }
    }

    // Fix rounding drift, if any.
    int assigned = 0;
    for (auto p : out)
        assigned += (p == workload::Priority::Low) ? 1 : 0;
    for (std::size_t i = 0; assigned < lp && i < out.size(); ++i) {
        if (out[i] == workload::Priority::High) {
            out[i] = workload::Priority::Low;
            ++assigned;
        }
    }
    return out;
}

} // namespace polca::cluster
