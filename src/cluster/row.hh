/**
 * @file
 * One datacenter row (PDU domain): the unit at which power is
 * provisioned, measured, and oversubscribed (Figure 2, Table 2).
 * Bundles the servers, the load-balancing dispatcher, and the row
 * manager telemetry into the object POLCA manages.
 */

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/dispatcher.hh"
#include "cluster/inference_server.hh"
#include "llm/model_spec.hh"
#include "power/server_model.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "telemetry/row_manager.hh"

namespace polca::cluster {

/** Row construction parameters. */
struct RowConfig
{
    power::ServerSpec serverSpec = power::ServerSpec::dgxA100_80gb();

    /** Model served by every endpoint (POLCA eval: BLOOM-176B). */
    std::string modelName = "BLOOM-176B";

    /** Full model spec to serve instead of looking @ref modelName up
     *  in the catalog — lets scenario files tweak or define models
     *  that are not Table 3 entries. */
    std::optional<llm::ModelSpec> modelOverride;

    /** Servers the row's power budget was provisioned for. */
    int baseServers = 40;

    /** Extra servers added via oversubscription (fraction of base;
     *  0.30 = the paper's headline +30 %). */
    double addedServerFraction = 0.0;

    /** Fraction of servers placed in the low-priority pool. */
    double lpServerFraction = 0.5;

    /**
     * Provisioned (budgeted) watts per base server.  The row budget
     * is baseServers x this.  Defaults to a derated DGX-A100 budget
     * (Section 5: observed peak ~5.7 kW rather than the 6.5 kW
     * rating), which puts default-fleet peak utilization near the
     * 79 % the paper reports for production inference rows (Table 4).
     */
    double provisionedPerServerWatts = 4950.0;

    /** Row telemetry cadence (Table 1: 2 s). */
    sim::Tick telemetryInterval = sim::secondsToTicks(2);

    /** Per-server request buffer (Section 6.6: one). */
    std::size_t bufferSize = 1;

    /** Padded batching (Insight 5): coalesce up to this many
     *  buffered requests per service turn.  Size bufferSize to at
     *  least this for batches to form; 1 = the paper's setup. */
    std::size_t maxBatchSize = 1;

    /** Phase-aware power management (Section 5.2): run token phases
     *  at this SM clock on every server (0 disables). */
    double phaseAwareTokenClockMhz = 0.0;

    /** Probability each 2 s row reading is silently dropped
     *  (OOB telemetry unreliability, Section 3.3). */
    double telemetryDropoutProbability = 0.0;

    /** Record the full row power series (memory heavy on long runs;
     *  POLCA itself only needs the latest reading). */
    bool recordPowerSeries = false;
};

/**
 * Owns the servers of one row plus their dispatcher and telemetry.
 */
class Row
{
  public:
    Row(sim::Simulation &sim, RowConfig config, sim::Rng rng);

    const RowConfig &config() const { return config_; }

    /** Deployed servers (base + added). */
    int numServers() const { return static_cast<int>(servers_.size()); }

    /** Row power budget, watts. */
    double provisionedWatts() const;

    Dispatcher &dispatcher() { return *dispatcher_; }
    telemetry::RowManager &rowManager() { return *rowManager_; }

    /** All servers (owned by the row). */
    std::vector<InferenceServer *> servers();

    /** Servers in the @p priority pool. */
    std::vector<InferenceServer *> pool(workload::Priority priority);

    /** Current total row draw (instantaneous, not telemetry). */
    double powerWatts() const;

    /** Apply the +x% power-intensity experiment to every server. */
    void setPowerScaleFactor(double factor);

    /** Model spec served by the row's endpoints. */
    const llm::ModelSpec &model() const { return model_; }

  private:
    sim::Simulation &sim_;
    RowConfig config_;
    llm::ModelSpec model_;
    std::vector<std::unique_ptr<InferenceServer>> servers_;
    std::unique_ptr<Dispatcher> dispatcher_;
    std::unique_ptr<telemetry::RowManager> rowManager_;
};

} // namespace polca::cluster

