/**
 * @file
 * One datacenter row (PDU domain): the unit at which power is
 * provisioned, measured, and oversubscribed (Figure 2, Table 2).
 *
 * Since the topology layer grew into the cluster::PowerDomain tree,
 * a Row is a thin view over a row-level domain whose children are
 * its server leaves: the domain owns the servers and the aggregating
 * telemetry::DomainManager, while the Row bundles the load-balancing
 * dispatcher and the row-scoped configuration into the object POLCA
 * manages.  A Row can stand alone (it owns its domain) or live
 * inside a larger tree (a Datacenter site, where the domain is a
 * child of the site root).
 */

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/dispatcher.hh"
#include "cluster/inference_server.hh"
#include "cluster/power_domain.hh"
#include "llm/model_spec.hh"
#include "power/server_model.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "telemetry/row_manager.hh"

namespace polca::cluster {

/** Row construction parameters. */
struct RowConfig
{
    power::ServerSpec serverSpec = power::ServerSpec::dgxA100_80gb();

    /** Model served by every endpoint (POLCA eval: BLOOM-176B). */
    std::string modelName = "BLOOM-176B";

    /** Full model spec to serve instead of looking @ref modelName up
     *  in the catalog — lets scenario files tweak or define models
     *  that are not Table 3 entries. */
    std::optional<llm::ModelSpec> modelOverride;

    /** Servers the row's power budget was provisioned for. */
    int baseServers = 40;

    /** Extra servers added via oversubscription (fraction of base;
     *  0.30 = the paper's headline +30 %). */
    double addedServerFraction = 0.0;

    /** Fraction of servers placed in the low-priority pool. */
    double lpServerFraction = 0.5;

    /**
     * Provisioned (budgeted) watts per base server.  The row budget
     * is baseServers x this.  Defaults to a derated DGX-A100 budget
     * (Section 5: observed peak ~5.7 kW rather than the 6.5 kW
     * rating), which puts default-fleet peak utilization near the
     * 79 % the paper reports for production inference rows (Table 4).
     */
    double provisionedPerServerWatts = 4950.0;

    /** Row telemetry cadence (Table 1: 2 s). */
    sim::Tick telemetryInterval = sim::secondsToTicks(2);

    /** Per-server request buffer (Section 6.6: one). */
    std::size_t bufferSize = 1;

    /** Padded batching (Insight 5): coalesce up to this many
     *  buffered requests per service turn.  Size bufferSize to at
     *  least this for batches to form; 1 = the paper's setup. */
    std::size_t maxBatchSize = 1;

    /** Phase-aware power management (Section 5.2): run token phases
     *  at this SM clock on every server (0 disables). */
    double phaseAwareTokenClockMhz = 0.0;

    /** Probability each 2 s row reading is silently dropped
     *  (OOB telemetry unreliability, Section 3.3). */
    double telemetryDropoutProbability = 0.0;

    /** Record the full row power series (memory heavy on long runs;
     *  POLCA itself only needs the latest reading). */
    bool recordPowerSeries = false;
};

/**
 * View over a row-level power domain plus the row's dispatcher.
 */
class Row
{
  public:
    /** Stand-alone row: owns its power domain. */
    Row(sim::Simulation &sim, RowConfig config, sim::Rng rng);

    /** Row built as the child @p name of @p parent in an existing
     *  domain tree (the Datacenter site root). */
    Row(sim::Simulation &sim, RowConfig config, sim::Rng rng,
        PowerDomain &parent, std::string name);

    const RowConfig &config() const { return config_; }

    /** Deployed servers (base + added). */
    int numServers() const { return domain_->numServers(); }

    /** Row power budget, watts. */
    double provisionedWatts() const { return domain_->budgetWatts(); }

    Dispatcher &dispatcher() { return *dispatcher_; }
    const Dispatcher &dispatcher() const { return *dispatcher_; }

    telemetry::RowManager &rowManager() { return *domain_->manager(); }
    const telemetry::RowManager &rowManager() const
    {
        return *domain_->manager();
    }

    /** The backing node of the power-domain tree. */
    PowerDomain &domain() { return *domain_; }
    const PowerDomain &domain() const { return *domain_; }

    /** All servers (owned by the row's domain). */
    std::vector<InferenceServer *> servers()
    {
        return domain_->servers();
    }

    /** Servers in the @p priority pool. */
    std::vector<InferenceServer *> pool(workload::Priority priority)
    {
        return domain_->pool(priority);
    }

    /** Current total row draw (instantaneous, not telemetry). */
    double powerWatts() const { return domain_->powerWatts(); }

    /** Apply the +x% power-intensity experiment to every server. */
    void setPowerScaleFactor(double factor);

    /** Model spec served by the row's endpoints. */
    const llm::ModelSpec &model() const { return model_; }

  private:
    PowerDomain::Options domainOptions(std::string name) const;
    void populate(sim::Rng &rng);

    sim::Simulation &sim_;
    RowConfig config_;
    llm::ModelSpec model_;

    /** Set when the row stands alone; domain_ always points at the
     *  row's node (owned here or by the parent tree). */
    std::unique_ptr<PowerDomain> ownedDomain_;
    PowerDomain *domain_ = nullptr;

    std::unique_ptr<Dispatcher> dispatcher_;
};

} // namespace polca::cluster
