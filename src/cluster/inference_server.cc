#include "cluster/inference_server.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace polca::cluster {

const char *
toString(ServerRole role)
{
    switch (role) {
      case ServerRole::Combined:
        return "combined";
      case ServerRole::PromptOnly:
        return "prompt-only";
      case ServerRole::TokenOnly:
        return "token-only";
    }
    return "?";
}

InferenceServer::InferenceServer(sim::Simulation &sim,
                                 power::ServerSpec serverSpec,
                                 const llm::ModelSpec &model,
                                 workload::Priority pool, int id,
                                 std::size_t bufferSize,
                                 ServerRole role)
    : sim_(sim), server_(std::move(serverSpec)), phases_(model),
      pool_(pool), id_(id), bufferSize_(bufferSize), role_(role)
{
    int needed = model.inferenceGpus;
    if (needed <= 0 ||
        static_cast<std::size_t>(needed) > server_.numGpus()) {
        sim::fatal("InferenceServer: model '", model.name, "' needs ",
                   needed, " GPUs; server has ", server_.numGpus());
    }
    for (int i = 0; i < needed; ++i)
        usedGpus_.push_back(static_cast<std::size_t>(i));
}

void
InferenceServer::attachObservability(obs::Observability *obs)
{
    if (!obs) {
        trace_ = nullptr;
        batchStat_ = completionStat_ = droppedStat_ =
            promptTicksStat_ = tokenTicksStat_ = nullptr;
        occupancyStat_ = nullptr;
        return;
    }
    trace_ = &obs->trace;
    batchStat_ = &obs->metrics.counter(
        "server.batches", "batches started across the fleet");
    completionStat_ = &obs->metrics.counter(
        "server.completions", "requests completed across the fleet");
    droppedStat_ = &obs->metrics.counter(
        "server.dropped_requests", "requests lost to server crashes");
    promptTicksStat_ = &obs->metrics.counter(
        "server.prompt_ticks", "ticks spent in prompt phases");
    tokenTicksStat_ = &obs->metrics.counter(
        "server.token_ticks", "ticks spent in token phases");
    occupancyStat_ = &obs->metrics.histogram(
        "server.batch_occupancy", 0.0, 32.0, 16,
        "requests coalesced per batch");
}

llm::InferenceConfig
InferenceServer::configFor(
    const std::vector<workload::Request> &batch) const
{
    llm::InferenceConfig config;
    config.batchSize = static_cast<int>(batch.size());
    config.datatype = llm::Datatype::FP16;
    config.inputTokens = 0;   // padded-batch maxima, not defaults
    config.outputTokens = 0;
    for (const workload::Request &r : batch) {
        config.inputTokens = std::max(config.inputTokens,
                                      r.inputTokens);
        config.outputTokens = std::max(config.outputTokens,
                                       r.outputTokens);
    }
    return config;
}

void
InferenceServer::setMaxBatchSize(std::size_t n)
{
    if (n == 0)
        sim::fatal("InferenceServer: zero max batch size");
    maxBatchSize_ = n;
}

void
InferenceServer::submit(const workload::Request &request)
{
    if (crashed_) {
        sim::panic("InferenceServer ", id_,
                   ": submit while crashed (dispatcher bug)");
    }
    if (!active_.has_value()) {
        startBatch({request});
    } else if (bufferFree()) {
        buffer_.push_back(request);
    } else {
        sim::panic("InferenceServer ", id_,
                   ": submit with full buffer (dispatcher bug)");
    }
}

void
InferenceServer::startBatch(std::vector<workload::Request> requests)
{
    if (requests.empty())
        sim::panic("InferenceServer: empty batch");
    active_.emplace();
    active_->requests = std::move(requests);
    active_->serviceStart = sim_.now();
    if (batchStat_)
        ++*batchStat_;
    if (occupancyStat_) {
        occupancyStat_->add(
            static_cast<double>(active_->requests.size()));
    }
    beginPhase(role_ == ServerRole::TokenOnly ? llm::Phase::Token
                                              : llm::Phase::Prompt);
}

void
InferenceServer::startNextFromBuffer()
{
    if (buffer_.empty())
        return;
    std::vector<workload::Request> batch;
    while (!buffer_.empty() && batch.size() < maxBatchSize_) {
        batch.push_back(buffer_.front());
        buffer_.pop_front();
    }
    startBatch(std::move(batch));
}

double
InferenceServer::currentSlowdown(llm::Phase phase) const
{
    return server_.gpu(usedGpus_.front())
        .slowdownFactor(phases_.computeBoundFraction(phase));
}

void
InferenceServer::setPhaseActivity()
{
    if (!active_.has_value()) {
        for (std::size_t g : usedGpus_)
            server_.gpu(g).setActivity(power::GpuActivity::idle());
        return;
    }
    llm::InferenceConfig config = configFor(active_->requests);
    power::GpuActivity activity =
        phases_.activity(active_->phase, config);
    activity.compute *= powerScale_;
    activity.memory = std::min(activity.memory * powerScale_, 1.2);
    for (std::size_t g : usedGpus_)
        server_.gpu(g).setActivity(activity);
}

void
InferenceServer::beginPhase(llm::Phase phase)
{
    llm::InferenceConfig config = configFor(active_->requests);
    active_->phase = phase;
    active_->phaseStart = sim_.now();
    active_->workRemaining = static_cast<double>(
        phase == llm::Phase::Prompt
            ? phases_.promptDuration(config)
            : phases_.tokenPhaseDuration(config));
    applyDesiredClock();  // phase-aware clock for the new phase
    setPhaseActivity();
    schedulePhaseEnd();
}

void
InferenceServer::schedulePhaseEnd()
{
    active_->slowdown = currentSlowdown(active_->phase);
    active_->phaseUpdateTime = sim_.now();
    auto wall = static_cast<sim::Tick>(
        active_->workRemaining * active_->slowdown + 0.5);
    active_->completionEvent = sim_.queue().scheduleAfter(
        wall, [this] { phaseEnded(); }, "phase-end");
}

void
InferenceServer::phaseEnded()
{
    obs::Counter *phaseTicks = active_->phase == llm::Phase::Prompt
        ? promptTicksStat_ : tokenTicksStat_;
    if (phaseTicks) {
        *phaseTicks += static_cast<std::uint64_t>(
            sim_.now() - active_->phaseStart);
    }

    bool anyOutput = false;
    for (const workload::Request &r : active_->requests)
        anyOutput |= r.outputTokens > 0;
    if (active_->phase == llm::Phase::Prompt && anyOutput &&
        role_ != ServerRole::PromptOnly) {
        beginPhase(llm::Phase::Token);
        return;
    }

    // All requests in the batch complete together.
    std::vector<Completion> completions;
    completions.reserve(active_->requests.size());
    for (const workload::Request &r : active_->requests) {
        Completion completion;
        completion.request = r;
        completion.completionTime = sim_.now();
        completion.latency = sim_.now() - r.arrival;
        completion.lastPhase = active_->phase;
        completions.push_back(completion);
    }
    busyTicks_ += sim_.now() - active_->serviceStart;
    completed_ += completions.size();
    if (completionStat_)
        *completionStat_ += completions.size();
    if (trace_) {
        trace_->complete(obs::TraceCategory::Cluster, "batch",
                         active_->serviceStart,
                         sim_.now() - active_->serviceStart, id_,
                         static_cast<double>(
                             active_->requests.size()));
    }
    active_.reset();
    applyDesiredClock();  // release any phase-aware token clock
    setPhaseActivity();   // idle

    startNextFromBuffer();

    if (onComplete_) {
        for (const Completion &completion : completions)
            onComplete_(*this, completion);
    }
}

void
InferenceServer::clockChanged()
{
    if (!active_.has_value())
        return;

    // Account for progress at the old slowdown, then rebook the
    // remaining work at the new one.
    sim::Tick elapsed = sim_.now() - active_->phaseUpdateTime;
    double done = static_cast<double>(elapsed) / active_->slowdown;
    active_->workRemaining =
        std::max(0.0, active_->workRemaining - done);
    sim_.queue().cancel(active_->completionEvent);
    schedulePhaseEnd();
}

void
InferenceServer::applyDesiredClock()
{
    // Effective lock = the lower of the OOB-commanded lock and the
    // phase-aware token clock (when a token phase is running).
    double phase = 0.0;
    if (phaseTokenClockMhz_ > 0.0 && active_.has_value() &&
        active_->phase == llm::Phase::Token) {
        phase = phaseTokenClockMhz_;
    }

    double desired;
    if (policyLockMhz_ > 0.0 && phase > 0.0)
        desired = std::min(policyLockMhz_, phase);
    else
        desired = std::max(policyLockMhz_, phase);

    if (desired > 0.0)
        server_.lockClockAll(desired);
    else
        server_.unlockClockAll();
}

void
InferenceServer::refreshClock()
{
    applyDesiredClock();
    clockChanged();
}

void
InferenceServer::applyClockLock(double mhz)
{
    if (crashed_)
        return;  // command lands on a dead server and is lost
    policyLockMhz_ = mhz;
    refreshClock();
}

void
InferenceServer::applyClockUnlock()
{
    if (crashed_)
        return;
    policyLockMhz_ = 0.0;
    refreshClock();
}

void
InferenceServer::setPhaseAwareTokenClock(double mhz)
{
    if (mhz < 0.0)
        sim::fatal("InferenceServer: negative token clock");
    phaseTokenClockMhz_ = mhz;
    refreshClock();
}

void
InferenceServer::applyPowerBrake(bool engaged)
{
    if (crashed_)
        return;
    server_.setPowerBrakeAll(engaged);
    clockChanged();
}

void
InferenceServer::crash()
{
    if (crashed_)
        return;
    ++crashes_;
    crashed_ = true;
    std::uint64_t lost = buffer_.size();
    if (active_.has_value()) {
        lost += active_->requests.size();
        sim_.queue().cancel(active_->completionEvent);
        active_.reset();
    }
    droppedRequests_ += lost;
    if (droppedStat_)
        *droppedStat_ += lost;
    buffer_.clear();
    // A reboot clears the BMC-applied state: the lock and brake are
    // gone until the manager's verification pass re-issues them.
    policyLockMhz_ = 0.0;
    server_.unlockClockAll();
    server_.setPowerBrakeAll(false);
    setPhaseActivity();
}

void
InferenceServer::restore()
{
    // Comes back empty, unlocked, and idle; powerWatts() resumes
    // reporting the (idle) electrical draw.
    crashed_ = false;
}

double
InferenceServer::appliedClockLockMhz() const
{
    // The BMC-visible state: what the OOB path last applied.  The
    // transient phase-aware token clock is in-band and local, so it
    // must not confuse the power manager's verification pass.
    return policyLockMhz_;
}

bool
InferenceServer::powerBrakeEngaged() const
{
    return server_.gpu(0).powerBrake();
}

InferenceServer::State
InferenceServer::saveState() const
{
    State state;
    state.server.emplace(server_);
    state.powerScale = powerScale_;
    state.policyLockMhz = policyLockMhz_;
    state.phaseTokenClockMhz = phaseTokenClockMhz_;
    state.crashed = crashed_;
    state.crashes = crashes_;
    state.droppedRequests = droppedRequests_;
    state.buffer = buffer_;
    state.completed = completed_;
    state.busyTicks = busyTicks_;
    if (active_.has_value()) {
        state.active.emplace();
        state.active->requests = active_->requests;
        state.active->phase = active_->phase;
        state.active->workRemaining = active_->workRemaining;
        state.active->slowdown = active_->slowdown;
        state.active->phaseUpdateTime = active_->phaseUpdateTime;
        state.active->phaseStart = active_->phaseStart;
        state.active->serviceStart = active_->serviceStart;
        state.active->completionWhen = active_->completionEvent.when();
        state.active->completionSeq = active_->completionEvent.seq();
    }
    return state;
}

void
InferenceServer::restoreState(const State &state)
{
    if (!state.server.has_value())
        sim::panic("InferenceServer: restoring an empty state");
    server_ = *state.server;
    powerScale_ = state.powerScale;
    policyLockMhz_ = state.policyLockMhz;
    phaseTokenClockMhz_ = state.phaseTokenClockMhz;
    crashed_ = state.crashed;
    crashes_ = state.crashes;
    droppedRequests_ = state.droppedRequests;
    buffer_ = state.buffer;
    completed_ = state.completed;
    busyTicks_ = state.busyTicks;
    active_.reset();
    if (state.active.has_value()) {
        active_.emplace();
        active_->requests = state.active->requests;
        active_->phase = state.active->phase;
        active_->workRemaining = state.active->workRemaining;
        active_->slowdown = state.active->slowdown;
        active_->phaseUpdateTime = state.active->phaseUpdateTime;
        active_->phaseStart = state.active->phaseStart;
        active_->serviceStart = state.active->serviceStart;
        active_->completionEvent = sim_.queue().rearmSchedule(
            state.active->completionWhen, state.active->completionSeq,
            [this] { phaseEnded(); }, "phase-end");
    }
}

void
InferenceServer::setPowerScaleFactor(double factor)
{
    if (factor <= 0.0)
        sim::fatal("InferenceServer: non-positive power scale");
    powerScale_ = factor;
    setPhaseActivity();
}

} // namespace polca::cluster
