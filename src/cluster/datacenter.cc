#include "cluster/datacenter.hh"

#include "sim/logging.hh"

namespace polca::cluster {

Datacenter::Datacenter(sim::Simulation &sim, DatacenterConfig config,
                       sim::Rng rng)
    : sim_(sim), config_(std::move(config))
{
    if (config_.numRows <= 0)
        sim::fatal("Datacenter: non-positive row count");

    PowerDomain::Options siteOptions;
    siteOptions.name = "site";
    siteOptions.level = DomainLevel::Site;
    site_ = std::make_unique<PowerDomain>(sim_, siteOptions);

    rows_.reserve(static_cast<std::size_t>(config_.numRows));
    for (int i = 0; i < config_.numRows; ++i) {
        rows_.push_back(std::make_unique<Row>(
            sim_, config_.row,
            rng.fork(static_cast<std::uint64_t>(i) + 1), *site_,
            "row" + std::to_string(i)));
    }
    site_->finalize();
}

int
Datacenter::numServers() const
{
    return site_->numServers();
}

double
Datacenter::provisionedWatts() const
{
    double total = 0.0;
    for (const auto &row : rows_)
        total += row->provisionedWatts();
    return total;
}

double
Datacenter::powerWatts() const
{
    return site_->powerWatts();
}

std::uint64_t
Datacenter::completions(workload::Priority priority) const
{
    std::uint64_t total = 0;
    for (const auto &row : rows_)
        total += row->dispatcher().completions(priority);
    return total;
}

} // namespace polca::cluster
