/**
 * @file
 * Datacenter-level topology (Figure 2): several rows, each with its
 * own PDU budget, telemetry, and (optionally) its own POLCA manager.
 * Power is provisioned and oversubscribed per row — the PDU breaker
 * is the aggregation level POLCA acts on — while this layer rolls up
 * fleet-wide statistics.
 *
 * A Datacenter is a thin view over the power-domain tree: it owns a
 * site-level PowerDomain root whose children are the rows' domains,
 * so fleet power is the compositional rollup of the per-row draws.
 * Heterogeneous multi-level sites (racks, mixed row groups, per-level
 * breakers) are built by cluster::Site (topology.hh) instead.
 */

#pragma once

#include <memory>
#include <vector>

#include "cluster/power_domain.hh"
#include "cluster/row.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

namespace polca::cluster {

/** Datacenter construction parameters. */
struct DatacenterConfig
{
    /** Identical configuration applied to every row. */
    RowConfig row;

    /** Number of rows (PDU domains). */
    int numRows = 4;
};

/**
 * Owns a set of rows.  Traffic is injected per row (each row serves
 * its own endpoints behind its own load balancer, as in production
 * where a row hosts a service cell).
 */
class Datacenter
{
  public:
    Datacenter(sim::Simulation &sim, DatacenterConfig config,
               sim::Rng rng);

    const DatacenterConfig &config() const { return config_; }

    int numRows() const { return static_cast<int>(rows_.size()); }
    Row &row(int index) { return *rows_.at(static_cast<std::size_t>(index)); }
    const Row &row(int index) const
    {
        return *rows_.at(static_cast<std::size_t>(index));
    }

    /** Site-level root of the power-domain tree. */
    PowerDomain &site() { return *site_; }
    const PowerDomain &site() const { return *site_; }

    /** Total deployed servers across rows. */
    int numServers() const;

    /** Sum of per-row provisioned budgets, watts. */
    double provisionedWatts() const;

    /** Instantaneous fleet draw, watts. */
    double powerWatts() const;

    /** Fleet-wide completions across rows. */
    std::uint64_t completions(workload::Priority priority) const;

  private:
    sim::Simulation &sim_;
    DatacenterConfig config_;
    std::unique_ptr<PowerDomain> site_;
    std::vector<std::unique_ptr<Row>> rows_;
};

} // namespace polca::cluster
