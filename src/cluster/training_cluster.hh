/**
 * @file
 * Training-cluster power at scale (Section 4.3, Table 4).
 *
 * A large synchronous training job keeps every server's iteration
 * waveform in phase, so the compute/communication power swings are
 * *correlated* across the whole cluster — the defining difference
 * from inference rows, where arrival-time variation de-correlates
 * prompt spikes (Insight 9).
 */

#pragma once

#include "llm/training_model.hh"
#include "power/server_model.hh"
#include "sim/random.hh"
#include "sim/timeseries.hh"

namespace polca::cluster {

/** Options for trainingClusterPower(). */
struct TrainingClusterOptions
{
    int numServers = 40;
    sim::Tick duration = sim::secondsToTicks(3600.0);
    sim::Tick sampleInterval = sim::secondsToTicks(2.0);

    /** Per-server activity jitter (silicon/imbalance variation). */
    double activityJitter = 0.02;

    /** Per-server phase jitter as a fraction of the iteration
     *  period; synchronous training keeps this small. */
    double phaseJitterFraction = 0.01;

    std::uint64_t seed = 7;
};

/**
 * Aggregate power series of @p num_servers servers running the same
 * synchronized training job.  Direct waveform sampling (no event
 * queue): cheap enough for multi-day horizons at 2 s cadence.
 */
sim::TimeSeries
trainingClusterPower(const llm::TrainingModel &model,
                     const power::ServerSpec &serverSpec,
                     const TrainingClusterOptions &options);

} // namespace polca::cluster

