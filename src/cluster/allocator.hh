/**
 * @file
 * Priority-aware server allocation.  POLCA's cloud allocator ensures
 * "a good mix of high and low-priority jobs in every row"
 * (Section 6.3) so there is always low-priority power to reclaim
 * before high-priority workloads must be touched.
 */

#pragma once

#include <vector>

#include "workload/workload_spec.hh"

namespace polca::cluster {

/**
 * Spread @p lp_fraction of @p num_servers as low-priority servers,
 * interleaved evenly (Bresenham spacing) so that any contiguous rack
 * slice contains both priorities.
 */
std::vector<workload::Priority>
allocatePriorities(int num_servers, double lp_fraction);

} // namespace polca::cluster

