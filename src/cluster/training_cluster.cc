#include "cluster/training_cluster.hh"

#include <vector>

#include "sim/logging.hh"

namespace polca::cluster {

sim::TimeSeries
trainingClusterPower(const llm::TrainingModel &model,
                     const power::ServerSpec &serverSpec,
                     const TrainingClusterOptions &options)
{
    if (options.numServers <= 0 || options.duration <= 0 ||
        options.sampleInterval <= 0) {
        sim::fatal("trainingClusterPower: invalid options");
    }

    sim::Rng rng(options.seed);
    sim::Tick period = model.spec().iterationPeriod;

    // Fixed per-server offsets and activity scale factors.
    std::vector<sim::Tick> offsets;
    std::vector<double> scales;
    offsets.reserve(static_cast<std::size_t>(options.numServers));
    scales.reserve(static_cast<std::size_t>(options.numServers));
    for (int s = 0; s < options.numServers; ++s) {
        double jitter = rng.uniform(-options.phaseJitterFraction,
                                    options.phaseJitterFraction);
        offsets.push_back(static_cast<sim::Tick>(
            jitter * static_cast<double>(period)));
        scales.push_back(1.0 + rng.normal(0.0, options.activityJitter));
    }

    power::ServerModel server(serverSpec);
    sim::TimeSeries out;
    out.reserve(static_cast<std::size_t>(
        options.duration / options.sampleInterval + 1));

    for (sim::Tick t = 0; t <= options.duration;
         t += options.sampleInterval) {
        double total = 0.0;
        for (int s = 0; s < options.numServers; ++s) {
            auto i = static_cast<std::size_t>(s);
            sim::Tick local = t + offsets[i];
            if (local < 0)
                local += period;
            power::GpuActivity activity = model.activityAt(local);
            activity.compute *= scales[i];
            activity.memory *= scales[i];
            server.setActivityAll(activity);
            total += server.powerWatts();
        }
        out.add(t, total);
    }
    return out;
}

} // namespace polca::cluster
