/**
 * @file
 * Load balancer for a pool of inference servers: routes arrivals to
 * the priority-matching pool, preferring idle servers, then servers
 * with buffer room, then a central FIFO (the "typical load balanced
 * setup" with one-request buffers of Section 6.6).
 */

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "cluster/inference_server.hh"
#include "obs/observability.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "workload/trace.hh"

namespace polca::cluster {

/**
 * Priority-aware request router and the cluster's latency/throughput
 * bookkeeper.
 */
class Dispatcher
{
  public:
    Dispatcher(sim::Simulation &sim, sim::Rng rng);

    /** Register a server (joins the pool of its priority). */
    void addServer(InferenceServer *server);

    /**
     * Register arrival/completion/spill counters, the central-queue
     * depth histogram (sampled at every enqueue/drain), and
     * central_spill trace instants with @p obs.
     */
    void attachObservability(obs::Observability *obs);

    /**
     * Schedule the trace's arrivals (lazily, one event at a time).
     * @p trace must outlive the simulation run.
     */
    void injectTrace(const workload::Trace &trace);

    /**
     * Full mutable state at a snapshot boundary: the pick stream, the
     * central queues, the latency samplers and counters, and — if an
     * arrival chain is in flight — the schedule position of the next
     * arrival event.
     */
    struct State
    {
        sim::Rng rng;
        std::deque<workload::Request> centralLow;
        std::deque<workload::Request> centralHigh;
        sim::Sampler lowLatency;
        sim::Sampler highLatency;
        std::vector<sim::Sampler> byWorkload;
        std::uint64_t lowArrivals = 0;
        std::uint64_t highArrivals = 0;
        std::uint64_t lowCompletions = 0;
        std::uint64_t highCompletions = 0;
        bool arrivalPending = false;
        std::size_t nextArrival = 0;      ///< trace index of that event
        sim::Tick arrivalWhen = 0;
        std::uint64_t arrivalSeq = 0;
    };

    /** Capture mutable state (snapshot support). */
    [[nodiscard]] State saveState() const;

    /**
     * Restore from a snapshot while the queue has a restore open.
     * @p trace is the same trace object (or an identical copy) the
     * snapshotted dispatcher was fed; required when the saved state
     * has an arrival in flight.  Replaces injectTrace() on a branch —
     * the arrival chain resumes at the saved position.
     */
    void restoreState(const State &state,
                      const workload::Trace *trace);

    /** @name Statistics */
    /** @{ */
    /** End-to-end latency (seconds) of completed requests. */
    const sim::Sampler &latencySeconds(workload::Priority p) const;

    std::uint64_t arrivals(workload::Priority p) const;
    std::uint64_t completions(workload::Priority p) const;

    /** Requests currently waiting in the central queue. */
    std::size_t centralQueueDepth(workload::Priority p) const;

    /** Completed requests per second of simulated time so far. */
    double throughput(workload::Priority p) const;

    /** Per-workload-class latency samplers (index = workloadIndex). */
    const std::vector<sim::Sampler> &latencyByWorkload() const
    {
        return byWorkload_;
    }
    /** @} */

  private:
    void scheduleArrival(std::size_t index);
    void arrive(std::size_t index);
    void route(const workload::Request &request);
    void onCompletion(InferenceServer &server);

    std::vector<InferenceServer *> &pool(workload::Priority p);
    std::deque<workload::Request> &central(workload::Priority p);

    /** Pick an accepting server: random idle, else random with
     *  buffer room; nullptr when none can accept. */
    InferenceServer *pickServer(workload::Priority p);

    sim::Simulation &sim_;
    sim::Rng rng_;
    // polca-snapshot: skip(lowPool_, topology wiring; servers snapshot themselves)
    std::vector<InferenceServer *> lowPool_;
    // polca-snapshot: skip(highPool_, topology wiring; servers snapshot themselves)
    std::vector<InferenceServer *> highPool_;
    std::deque<workload::Request> centralLow_;
    std::deque<workload::Request> centralHigh_;
    sim::Sampler lowLatency_;
    sim::Sampler highLatency_;
    std::vector<sim::Sampler> byWorkload_;
    std::uint64_t lowArrivals_ = 0;
    std::uint64_t highArrivals_ = 0;
    std::uint64_t lowCompletions_ = 0;
    std::uint64_t highCompletions_ = 0;

    /** Trace being injected and the arrival chain's position (the
     *  chain schedules one event at a time; see scheduleArrival). */
    const workload::Trace *feed_ = nullptr;
    bool arrivalPending_ = false;
    std::size_t nextArrival_ = 0;
    sim::Tick arrivalWhen_ = 0;
    std::uint64_t arrivalSeq_ = 0;

    obs::TraceRecorder *trace_ = nullptr;
    obs::Counter *arrivalLowStat_ = nullptr;
    obs::Counter *arrivalHighStat_ = nullptr;
    obs::Counter *completionStat_ = nullptr;
    obs::Counter *spillStat_ = nullptr;
    obs::Histogram *queueDepthStat_ = nullptr;
    obs::LogHistogram *queueDelayStat_ = nullptr;
};

} // namespace polca::cluster

