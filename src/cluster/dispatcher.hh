/**
 * @file
 * Load balancer for a pool of inference servers: routes arrivals to
 * the priority-matching pool, preferring idle servers, then servers
 * with buffer room, then a central FIFO (the "typical load balanced
 * setup" with one-request buffers of Section 6.6).
 */

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "cluster/inference_server.hh"
#include "obs/observability.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "workload/trace.hh"

namespace polca::cluster {

/**
 * Priority-aware request router and the cluster's latency/throughput
 * bookkeeper.
 */
class Dispatcher
{
  public:
    Dispatcher(sim::Simulation &sim, sim::Rng rng);

    /** Register a server (joins the pool of its priority). */
    void addServer(InferenceServer *server);

    /**
     * Register arrival/completion/spill counters, the central-queue
     * depth histogram (sampled at every enqueue/drain), and
     * central_spill trace instants with @p obs.
     */
    void attachObservability(obs::Observability *obs);

    /**
     * Schedule the trace's arrivals (lazily, one event at a time).
     * @p trace must outlive the simulation run.
     */
    void injectTrace(const workload::Trace &trace);

    /** @name Statistics */
    /** @{ */
    /** End-to-end latency (seconds) of completed requests. */
    const sim::Sampler &latencySeconds(workload::Priority p) const;

    std::uint64_t arrivals(workload::Priority p) const;
    std::uint64_t completions(workload::Priority p) const;

    /** Requests currently waiting in the central queue. */
    std::size_t centralQueueDepth(workload::Priority p) const;

    /** Completed requests per second of simulated time so far. */
    double throughput(workload::Priority p) const;

    /** Per-workload-class latency samplers (index = workloadIndex). */
    const std::vector<sim::Sampler> &latencyByWorkload() const
    {
        return byWorkload_;
    }
    /** @} */

  private:
    void arrive(const workload::Trace &trace, std::size_t index);
    void route(const workload::Request &request);
    void onCompletion(InferenceServer &server);

    std::vector<InferenceServer *> &pool(workload::Priority p);
    std::deque<workload::Request> &central(workload::Priority p);

    /** Pick an accepting server: random idle, else random with
     *  buffer room; nullptr when none can accept. */
    InferenceServer *pickServer(workload::Priority p);

    sim::Simulation &sim_;
    sim::Rng rng_;
    std::vector<InferenceServer *> lowPool_;
    std::vector<InferenceServer *> highPool_;
    std::deque<workload::Request> centralLow_;
    std::deque<workload::Request> centralHigh_;
    sim::Sampler lowLatency_;
    sim::Sampler highLatency_;
    std::vector<sim::Sampler> byWorkload_;
    std::uint64_t lowArrivals_ = 0;
    std::uint64_t highArrivals_ = 0;
    std::uint64_t lowCompletions_ = 0;
    std::uint64_t highCompletions_ = 0;

    obs::TraceRecorder *trace_ = nullptr;
    obs::Counter *arrivalLowStat_ = nullptr;
    obs::Counter *arrivalHighStat_ = nullptr;
    obs::Counter *completionStat_ = nullptr;
    obs::Counter *spillStat_ = nullptr;
    obs::Histogram *queueDepthStat_ = nullptr;
    obs::LogHistogram *queueDelayStat_ = nullptr;
};

} // namespace polca::cluster

