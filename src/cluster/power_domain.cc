#include "cluster/power_domain.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace polca::cluster {

const char *
toString(DomainLevel level)
{
    switch (level) {
      case DomainLevel::Server:
        return "server";
      case DomainLevel::Rack:
        return "rack";
      case DomainLevel::Row:
        return "row";
      case DomainLevel::Site:
        return "site";
    }
    return "?";
}

PowerDomain::PowerDomain(sim::Simulation &sim, Options options)
    : PowerDomain(Internal{}, sim, std::move(options), nullptr)
{}

PowerDomain::PowerDomain(Internal, sim::Simulation &sim,
                         Options options, PowerDomain *parent)
    : sim_(sim), options_(std::move(options)), parent_(parent)
{
    if (options_.name.empty())
        sim::fatal("PowerDomain: empty name");
    if (options_.budgetWatts < 0.0)
        sim::fatal("PowerDomain: negative budget");
    if (options_.telemetryInterval > 0) {
        manager_ = std::make_unique<telemetry::DomainManager>(
            sim_, options_.telemetryInterval, options_.recordSeries);
    }
}

PowerDomain &
PowerDomain::addChild(Options options)
{
    if (finalized_)
        sim::fatal("PowerDomain: addChild after finalize");
    if (server_ || supply_)
        sim::fatal("PowerDomain: leaf '", path(), "' cannot have children");
    children_.push_back(std::make_unique<PowerDomain>(
        Internal{}, sim_, std::move(options), this));
    return *children_.back();
}

InferenceServer &
PowerDomain::addServer(std::unique_ptr<InferenceServer> server,
                       double budgetWatts)
{
    if (!server)
        sim::fatal("PowerDomain: null server");
    Options options;
    options.name = "server" + std::to_string(server->id());
    options.level = DomainLevel::Server;
    PowerDomain &leaf = addChild(std::move(options));
    leaf.server_ = std::move(server);
    leaf.leafBudgetWatts_ = budgetWatts;
    return *leaf.server_;
}

PowerDomain &
PowerDomain::addLeaf(std::string name, PowerSource supply,
                     double budgetWatts)
{
    if (!supply)
        sim::fatal("PowerDomain: empty leaf power source");
    Options options;
    options.name = std::move(name);
    options.level = DomainLevel::Server;
    PowerDomain &leaf = addChild(std::move(options));
    leaf.supply_ = std::move(supply);
    leaf.leafBudgetWatts_ = budgetWatts;
    return leaf;
}

void
PowerDomain::armBreaker(telemetry::BreakerModel::Config config)
{
    if (breaker_)
        sim::fatal("PowerDomain: breaker already armed at '", path(), "'");
    if (config.provisionedWatts <= 0.0)
        config.provisionedWatts = budgetWatts();
    breaker_ = std::make_unique<telemetry::BreakerModel>(
        sim_, [this] { return powerWatts(); }, config);
    if (finalized_)
        breaker_->start();
}

void
PowerDomain::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;
    for (auto &child : children_)
        child->finalize();
    if (manager_) {
        for (auto &child : children_) {
            PowerDomain *raw = child.get();
            manager_->addSource([raw] { return raw->powerWatts(); });
        }
        manager_->start();
    }
    if (breaker_)
        breaker_->start();
}

std::string
PowerDomain::path() const
{
    if (!parent_)
        return options_.name;
    return parent_->path() + "." + options_.name;
}

int
PowerDomain::numServers() const
{
    if (isLeaf())
        return server_ ? 1 : 0;
    int total = 0;
    for (const auto &child : children_)
        total += child->numServers();
    return total;
}

std::vector<InferenceServer *>
PowerDomain::servers()
{
    std::vector<InferenceServer *> out;
    visit([&out](PowerDomain &domain) {
        if (domain.server_)
            out.push_back(domain.server_.get());
    });
    return out;
}

std::vector<const InferenceServer *>
PowerDomain::servers() const
{
    std::vector<const InferenceServer *> out;
    visit([&out](const PowerDomain &domain) {
        if (domain.server_)
            out.push_back(domain.server_.get());
    });
    return out;
}

std::vector<InferenceServer *>
PowerDomain::pool(workload::Priority priority)
{
    std::vector<InferenceServer *> out;
    visit([&out, priority](PowerDomain &domain) {
        if (domain.server_ && domain.server_->pool() == priority)
            out.push_back(domain.server_.get());
    });
    return out;
}

double
PowerDomain::powerWatts() const
{
    if (server_)
        return server_->powerWatts();
    if (supply_)
        return supply_();
    double total = 0.0;
    for (const auto &child : children_)
        total += child->powerWatts();
    return total;
}

double
PowerDomain::provisionedWatts() const
{
    if (isLeaf())
        return leafBudgetWatts_;
    double total = 0.0;
    for (const auto &child : children_)
        total += child->provisionedWatts();
    return total;
}

double
PowerDomain::budgetWatts() const
{
    return options_.budgetWatts > 0.0 ? options_.budgetWatts
                                      : provisionedWatts();
}

double
PowerDomain::effectiveBudgetWatts() const
{
    double effective = budgetWatts();
    double provisioned = provisionedWatts();
    for (const PowerDomain *ancestor = parent_; ancestor;
         ancestor = ancestor->parent_) {
        double ancestorProvisioned = ancestor->provisionedWatts();
        if (ancestorProvisioned <= 0.0)
            continue;
        effective = std::min(
            effective, ancestor->budgetWatts() *
                           (provisioned / ancestorProvisioned));
    }
    return effective;
}

void
PowerDomain::visit(const std::function<void(PowerDomain &)> &fn)
{
    fn(*this);
    for (auto &child : children_)
        child->visit(fn);
}

void
PowerDomain::visit(
    const std::function<void(const PowerDomain &)> &fn) const
{
    fn(*this);
    for (const auto &child : children_) {
        const PowerDomain &node = *child;
        node.visit(fn);
    }
}

} // namespace polca::cluster
