/**
 * @file
 * Site builder: constructs a heterogeneous power-domain tree
 * (servers → racks → rows → site) from a declarative TopologyConfig,
 * the scenario layer's `[topology]` section.
 *
 * Row groups mix GPU generations and served models across the site
 * (Wilkins et al.: site power is the compositional rollup of
 * heterogeneous per-server traces).  Budgets oversubscribe per
 * level: each row's budget is a fraction of its nameplate sum and
 * the site's budget a fraction of the summed row budgets, so a site
 * can be oversubscribed even when every row is in budget — the
 * statistical-multiplexing bet the paper makes at row scope
 * (Insight 9), applied once more at site scope.
 *
 * Per-domain randomness is keyed by domain *path* (sim::Rng
 * forkPath), not by draw order: adding a row group, or growing one,
 * never reshuffles the trace or dispatcher streams of the rows that
 * were already there.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/dispatcher.hh"
#include "cluster/power_domain.hh"
#include "cluster/row.hh"
#include "llm/model_spec.hh"
#include "power/server_model.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

namespace polca::cluster {

/**
 * One homogeneous group of rows ([[topology.rows]]): same rack
 * geometry, GPU generation, and served model.
 */
struct TopologyRowGroup
{
    /**
     * Group name; rows are named `<name><index>` ("row0", "row3"),
     * racks `rack<index>`, so metric paths look like
     * `site.row3.rack1.power`.  Must be lowercase [a-z0-9_] and
     * unique across groups.
     */
    std::string name = "row";

    int rows = 1;
    int racksPerRow = 4;
    int serversPerRack = 10;

    /** Server preset (DGX-A100-80GB | DGX-A100-40GB | DGX-H100). */
    std::string server = "DGX-A100-80GB";

    /** Catalog model served by every endpoint in the group. */
    std::string model = "BLOOM-176B";

    /** Fraction of each row's servers in the low-priority pool. */
    double lpServerFraction = 0.5;

    /** Nameplate provisioned watts per server. */
    double provisionedPerServerWatts = 4950.0;
};

/** The `[topology]` section: per-level counts, budgets, breakers. */
struct TopologyConfig
{
    /** Build the site tree instead of the single flat row. */
    bool enabled = false;

    /** Telemetry cadence of every non-leaf domain manager. */
    sim::Tick telemetryInterval = sim::secondsToTicks(2);

    /** Row budget as a fraction of the row's nameplate sum;
     *  < 1 oversubscribes every row. */
    double rowBudgetFraction = 1.0;

    /** Site budget as a fraction of the summed row budgets;
     *  < 1 oversubscribes the site on top of the rows. */
    double siteBudgetFraction = 1.0;

    /** @name Breaker trip limits, as multiples of the level budget
     *  (NEC-style 80 % continuous rating -> 1.25x).  0 = no breaker
     *  at that level. */
    /** @{ */
    double rackBreakerLimitFraction = 0.0;
    double rowBreakerLimitFraction = 1.25;
    double siteBreakerLimitFraction = 1.25;
    /** @} */

    /** Sustained time above a limit before that breaker trips. */
    sim::Tick breakerTripDuration = sim::secondsToTicks(30);

    /** Attach one POLCA manager per row (managed experiments). */
    bool manageRows = true;

    /** Record every non-leaf manager's full reading series (the
     *  compositional site power trace artifact). */
    bool recordSeries = false;

    std::vector<TopologyRowGroup> groups;

    int numRows() const;
    int numServers() const;
};

/** Resolve a server preset name; fatal on unknown names (the
 *  scenario layer validates with a diagnostic first). */
power::ServerSpec serverSpecForPreset(const std::string &preset);

/**
 * Owns the site tree plus the per-row dispatchers.  The tree is
 * finalized (managers and breakers running) on return; traffic,
 * managers, and observability are attached by the experiment
 * harness.
 */
class Site
{
  public:
    /** One row's serving cell: its domain, dispatcher, model, and
     *  path-keyed random stream. */
    struct SiteRow
    {
        std::string name;
        PowerDomain *domain = nullptr;
        std::unique_ptr<Dispatcher> dispatcher;
        llm::ModelSpec model;
        const TopologyRowGroup *group = nullptr;

        /** forkPath(name)-derived stream; per-row components
         *  (dispatcher, manager) fork from it, so the row's
         *  randomness depends only on (site seed, row name). */
        sim::Rng rng;
    };

    /**
     * Build the tree.  @p shared supplies the row-scope knobs every
     * group inherits (buffer size, batching, phase-aware clock);
     * counts, budgets, and hardware come from @p config.
     */
    Site(sim::Simulation &sim, const TopologyConfig &config,
         const RowConfig &shared, sim::Rng rng);

    PowerDomain &root() { return *root_; }
    const PowerDomain &root() const { return *root_; }

    std::vector<SiteRow> &rows() { return rows_; }
    const std::vector<SiteRow> &rows() const { return rows_; }

    int numServers() const { return root_->numServers(); }

  private:
    sim::Simulation &sim_;
    TopologyConfig config_;
    std::unique_ptr<PowerDomain> root_;
    std::vector<SiteRow> rows_;
};

} // namespace polca::cluster
