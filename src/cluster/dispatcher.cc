#include "cluster/dispatcher.hh"

#include "sim/logging.hh"

namespace polca::cluster {

Dispatcher::Dispatcher(sim::Simulation &sim, sim::Rng rng)
    : sim_(sim), rng_(rng)
{
}

std::vector<InferenceServer *> &
Dispatcher::pool(workload::Priority p)
{
    return p == workload::Priority::High ? highPool_ : lowPool_;
}

std::deque<workload::Request> &
Dispatcher::central(workload::Priority p)
{
    return p == workload::Priority::High ? centralHigh_ : centralLow_;
}

void
Dispatcher::addServer(InferenceServer *server)
{
    if (!server)
        sim::panic("Dispatcher: null server");
    pool(server->pool()).push_back(server);
    server->setCompletionCallback(
        [this](InferenceServer &s, const InferenceServer::Completion &c) {
            workload::Priority p = c.request.priority;
            double seconds = sim::ticksToSeconds(c.latency);
            if (p == workload::Priority::High) {
                highLatency_.add(seconds);
                ++highCompletions_;
            } else {
                lowLatency_.add(seconds);
                ++lowCompletions_;
            }
            if (c.request.workloadIndex >= byWorkload_.size())
                byWorkload_.resize(c.request.workloadIndex + 1);
            byWorkload_[c.request.workloadIndex].add(seconds);
            if (completionStat_)
                ++*completionStat_;
            onCompletion(s);
        });
}

void
Dispatcher::attachObservability(obs::Observability *obs)
{
    if (!obs) {
        trace_ = nullptr;
        arrivalLowStat_ = arrivalHighStat_ = completionStat_ =
            spillStat_ = nullptr;
        queueDepthStat_ = nullptr;
        queueDelayStat_ = nullptr;
        return;
    }
    trace_ = &obs->trace;
    arrivalLowStat_ = &obs->metrics.counter(
        "dispatcher.arrivals_low", "low-priority request arrivals");
    arrivalHighStat_ = &obs->metrics.counter(
        "dispatcher.arrivals_high", "high-priority request arrivals");
    completionStat_ = &obs->metrics.counter(
        "dispatcher.completions", "requests completed (all pools)");
    spillStat_ = &obs->metrics.counter(
        "dispatcher.central_spills",
        "arrivals that found no server and queued centrally");
    queueDepthStat_ = &obs->metrics.histogram(
        "dispatcher.central_queue_depth", 0.0, 64.0, 16,
        "central queue depth sampled at enqueue/drain");
    // 1 ms .. ~1 day at 1 % relative error: central-queue waits range
    // from instant drains to capped-pool pileups.
    queueDelayStat_ = &obs->metrics.logHistogram(
        "dispatcher.queue_delay_s", 1e-3, 1e5, 0.01,
        "central-queue wait of spilled requests (seconds)");
}

void
Dispatcher::injectTrace(const workload::Trace &trace)
{
    if (trace.empty())
        return;
    feed_ = &trace;
    scheduleArrival(0);
}

void
Dispatcher::scheduleArrival(std::size_t index)
{
    sim::Tick when = std::max(feed_->requests()[index].arrival,
                              sim_.now());
    arrivalPending_ = true;
    nextArrival_ = index;
    arrivalWhen_ = when;
    arrivalSeq_ = sim_.queue().post(
        when, [this, index] { arrive(index); }, "arrival");
}

void
Dispatcher::arrive(std::size_t index)
{
    arrivalPending_ = false;
    const workload::Request &request = feed_->requests()[index];
    if (request.priority == workload::Priority::High) {
        ++highArrivals_;
        if (arrivalHighStat_)
            ++*arrivalHighStat_;
    } else {
        ++lowArrivals_;
        if (arrivalLowStat_)
            ++*arrivalLowStat_;
    }
    route(request);

    std::size_t next = index + 1;
    if (next < feed_->size())
        scheduleArrival(next);
}

Dispatcher::State
Dispatcher::saveState() const
{
    State state;
    state.rng = rng_;
    state.centralLow = centralLow_;
    state.centralHigh = centralHigh_;
    state.lowLatency = lowLatency_;
    state.highLatency = highLatency_;
    state.byWorkload = byWorkload_;
    state.lowArrivals = lowArrivals_;
    state.highArrivals = highArrivals_;
    state.lowCompletions = lowCompletions_;
    state.highCompletions = highCompletions_;
    state.arrivalPending = arrivalPending_;
    if (arrivalPending_) {
        state.nextArrival = nextArrival_;
        state.arrivalWhen = arrivalWhen_;
        state.arrivalSeq = arrivalSeq_;
    }
    return state;
}

void
Dispatcher::restoreState(const State &state,
                         const workload::Trace *trace)
{
    rng_ = state.rng;
    centralLow_ = state.centralLow;
    centralHigh_ = state.centralHigh;
    lowLatency_ = state.lowLatency;
    highLatency_ = state.highLatency;
    byWorkload_ = state.byWorkload;
    lowArrivals_ = state.lowArrivals;
    highArrivals_ = state.highArrivals;
    lowCompletions_ = state.lowCompletions;
    highCompletions_ = state.highCompletions;
    feed_ = trace;
    arrivalPending_ = state.arrivalPending;
    if (!state.arrivalPending)
        return;
    if (!feed_) {
        sim::panic("Dispatcher: restoring an in-flight arrival chain "
                   "without its trace");
    }
    nextArrival_ = state.nextArrival;
    arrivalWhen_ = state.arrivalWhen;
    arrivalSeq_ = state.arrivalSeq;
    std::size_t index = state.nextArrival;
    sim_.queue().rearmPost(state.arrivalWhen, state.arrivalSeq,
                           [this, index] { arrive(index); },
                           "arrival");
}

InferenceServer *
Dispatcher::pickServer(workload::Priority p)
{
    auto &servers = pool(p);
    if (servers.empty()) {
        sim::fatal("Dispatcher: no servers in the ",
                   workload::toString(p), " priority pool");
    }

    // Prefer idle servers, then servers with buffer room; pick
    // uniformly at random within the preferred class (load
    // balancing without a shared queue).
    std::vector<InferenceServer *> idle;
    std::vector<InferenceServer *> buffered;
    for (InferenceServer *server : servers) {
        if (server->idleNow())
            idle.push_back(server);
        else if (server->bufferFree())
            buffered.push_back(server);
    }
    auto pick = [this](std::vector<InferenceServer *> &candidates) {
        auto i = static_cast<std::size_t>(rng_.uniformInt(
            0, static_cast<std::int64_t>(candidates.size()) - 1));
        return candidates[i];
    };
    if (!idle.empty())
        return pick(idle);
    if (!buffered.empty())
        return pick(buffered);
    return nullptr;
}

void
Dispatcher::route(const workload::Request &request)
{
    InferenceServer *server = pickServer(request.priority);
    if (server) {
        server->submit(request);
        return;
    }
    auto &queue = central(request.priority);
    queue.push_back(request);
    if (spillStat_)
        ++*spillStat_;
    if (queueDepthStat_)
        queueDepthStat_->add(static_cast<double>(queue.size()));
    if (trace_) {
        trace_->instant(obs::TraceCategory::Cluster, "central_spill",
                        sim_.now(), 0,
                        static_cast<double>(queue.size()));
    }
}

void
Dispatcher::onCompletion(InferenceServer &server)
{
    auto &queue = central(server.pool());
    bool drained = false;
    while (!queue.empty() && server.canAccept()) {
        if (queueDelayStat_) {
            queueDelayStat_->add(sim::ticksToSeconds(
                sim_.now() - queue.front().arrival));
        }
        server.submit(queue.front());
        queue.pop_front();
        drained = true;
    }
    if (drained && queueDepthStat_)
        queueDepthStat_->add(static_cast<double>(queue.size()));
}

const sim::Sampler &
Dispatcher::latencySeconds(workload::Priority p) const
{
    return p == workload::Priority::High ? highLatency_ : lowLatency_;
}

std::uint64_t
Dispatcher::arrivals(workload::Priority p) const
{
    return p == workload::Priority::High ? highArrivals_ : lowArrivals_;
}

std::uint64_t
Dispatcher::completions(workload::Priority p) const
{
    return p == workload::Priority::High ? highCompletions_
                                         : lowCompletions_;
}

std::size_t
Dispatcher::centralQueueDepth(workload::Priority p) const
{
    return p == workload::Priority::High ? centralHigh_.size()
                                         : centralLow_.size();
}

double
Dispatcher::throughput(workload::Priority p) const
{
    double seconds = sim::ticksToSeconds(sim_.now());
    if (seconds <= 0.0)
        return 0.0;
    return static_cast<double>(completions(p)) / seconds;
}

} // namespace polca::cluster
