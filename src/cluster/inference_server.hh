/**
 * @file
 * Event-driven LLM inference endpoint: one server running one model
 * replica with a one-request buffer (the paper's simulator setup,
 * Section 6.6).  Executes prompt/token phases at the GPUs' effective
 * clock and reschedules in-flight work exactly when POLCA changes the
 * frequency locks.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "llm/phase_model.hh"
#include "obs/observability.hh"
#include "power/server_model.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "telemetry/smbpbi.hh"
#include "workload/trace.hh"

namespace polca::cluster {

/**
 * What part of an inference a server executes.  Combined is the
 * paper's default deployment; PromptOnly/TokenOnly implement the
 * Section 5.2 "separate prompt computation and token processing on
 * different GPUs" design (Splitwise), coordinated by
 * PhaseSplitCluster.
 */
enum class ServerRole
{
    Combined,
    PromptOnly,
    TokenOnly,
};

const char *toString(ServerRole role);

/**
 * One inference-serving GPU server.
 *
 * A request runs as a prompt segment then a token segment; segment
 * progress is tracked in "work at max clock" units so a clock change
 * mid-flight simply rescales the remaining wall time.  GPU activity
 * follows the active phase, so the server's powerWatts() reflects the
 * spiky-prompt / flat-token pattern of Insight 4.
 */
class InferenceServer : public telemetry::ClockControllable
{
  public:
    /** Completion record handed to the completion callback. */
    struct Completion
    {
        workload::Request request;
        sim::Tick completionTime;
        sim::Tick latency;          ///< completion - trace arrival
        llm::Phase lastPhase;       ///< phase that finished the stay
    };

    using CompletionCallback =
        std::function<void(InferenceServer &, const Completion &)>;

    InferenceServer(sim::Simulation &sim, power::ServerSpec serverSpec,
                    const llm::ModelSpec &model,
                    workload::Priority pool, int id,
                    std::size_t bufferSize = 1,
                    ServerRole role = ServerRole::Combined);

    /**
     * Register fleet-wide serving counters (all servers share the
     * same "server.*" metric objects, so they aggregate across the
     * fleet), the batch-occupancy histogram, and per-batch trace
     * spans (one Chrome "thread" per server id) with @p obs.
     */
    void attachObservability(obs::Observability *obs);

    int id() const { return id_; }
    workload::Priority pool() const { return pool_; }
    ServerRole role() const { return role_; }
    const llm::ModelSpec &model() const { return phases_.model(); }

    /** @name Request flow */
    /** @{ */
    /** @return true when no request is being served (and the server
     *  is up — a crashed server is dark, not idle). */
    bool idleNow() const { return !crashed_ && !active_.has_value(); }

    /** @return true when the buffer has room. */
    bool bufferFree() const
    {
        return !crashed_ && buffer_.size() < bufferSize_;
    }

    /** @return true if submit() may be called. */
    bool canAccept() const { return idleNow() || bufferFree(); }

    std::size_t queueDepth() const { return buffer_.size(); }

    /** Hand a request to this server; panics if !canAccept(). */
    void submit(const workload::Request &request);

    /**
     * Enable batched serving (Insight 5: batching as a power and
     * throughput knob): when the server becomes free it coalesces up
     * to @p n buffered requests into one padded batch.  Size the
     * request buffer to at least @p n for batches to actually form.
     * Default 1 reproduces the paper's one-request-at-a-time setup.
     */
    void setMaxBatchSize(std::size_t n);
    std::size_t maxBatchSize() const { return maxBatchSize_; }

    /** Requests currently being served together (0 when idle). */
    std::size_t activeBatchSize() const
    {
        return active_ ? active_->requests.size() : 0;
    }

    /** Invoked at each completion (after stats are recorded). */
    void setCompletionCallback(CompletionCallback callback)
    {
        onComplete_ = std::move(callback);
    }
    /** @} */

    /** @name ClockControllable (OOB control target) */
    /** @{ */
    void applyClockLock(double mhz) override;
    void applyClockUnlock() override;
    void applyPowerBrake(bool engaged) override;
    double appliedClockLockMhz() const override;
    bool powerBrakeEngaged() const override;
    /** @} */

    /** Instantaneous electrical draw of the whole server. */
    double powerWatts() const
    {
        return crashed_ ? 0.0 : server_.powerWatts();
    }

    /**
     * Scale all GPU activity by @p factor: the Section 6.6 experiment
     * where workloads become more power-intensive than profiled.
     */
    void setPowerScaleFactor(double factor);

    /**
     * Phase-aware power management (Section 5.2): run token phases
     * at @p mhz (0 disables).  Token phases are memory bound, so
     * this trades a small latency increase for a lower power floor;
     * prompt phases keep the full clock.  Composes with POLCA's
     * locks: the effective clock is the lower of the two.
     */
    void setPhaseAwareTokenClock(double mhz);

    double phaseAwareTokenClockMhz() const
    {
        return phaseTokenClockMhz_;
    }

    /** @name Crash/restart fault injection */
    /** @{ */
    /**
     * Take the server down hard: the active batch and everything
     * buffered are lost (those requests never complete), the draw
     * drops to zero, and — as after any reboot — the OOB clock lock
     * and power brake state are cleared.  POLCA's verification
     * guardrail is what re-establishes the lock afterwards.
     */
    void crash();

    /** Bring a crashed server back, empty and idle.  It rejoins
     *  dispatch on the next arrival routed to its pool. */
    void restore();

    /** @return true while crashed. */
    bool crashed() const { return crashed_; }

    std::uint64_t crashCount() const { return crashes_; }

    /** Requests lost to crashes (in flight or buffered). */
    std::uint64_t droppedRequests() const { return droppedRequests_; }
    /** @} */

    /** Underlying power model (inspection/tests). */
    const power::ServerModel &serverModel() const { return server_; }

    /** @name Snapshot support */
    /** @{ */
    /** In-flight batch at a snapshot boundary, with the schedule
     *  position of its phase-end event. */
    struct BatchState
    {
        std::vector<workload::Request> requests;
        llm::Phase phase = llm::Phase::Prompt;
        double workRemaining = 0.0;
        double slowdown = 1.0;
        sim::Tick phaseUpdateTime = 0;
        sim::Tick phaseStart = 0;
        sim::Tick serviceStart = 0;
        sim::Tick completionWhen = 0;
        std::uint64_t completionSeq = 0;
    };

    /** Full mutable server state at a snapshot boundary.  The power
     *  model is a plain value (per-GPU activity, lock, cap, brake), so
     *  it is captured by copy. */
    struct State
    {
        /** Always engaged after saveState(); optional only because
         *  ServerModel has no default construction. */
        std::optional<power::ServerModel> server;
        double powerScale = 1.0;
        double policyLockMhz = 0.0;
        double phaseTokenClockMhz = 0.0;
        bool crashed = false;
        std::uint64_t crashes = 0;
        std::uint64_t droppedRequests = 0;
        std::optional<BatchState> active;
        std::deque<workload::Request> buffer;
        std::uint64_t completed = 0;
        sim::Tick busyTicks = 0;
    };

    /** Capture mutable state (snapshot support). */
    [[nodiscard]] State saveState() const;

    /** Restore from a snapshot while the queue has a restore open;
     *  re-arms the phase-end event of any in-flight batch. */
    void restoreState(const State &state);
    /** @} */

    /** @name Statistics */
    /** @{ */
    std::uint64_t completedRequests() const { return completed_; }
    sim::Tick busyTicks() const { return busyTicks_; }
    /** @} */

  private:
    struct ActiveBatch
    {
        std::vector<workload::Request> requests;
        llm::Phase phase;
        double workRemaining;       ///< ticks at max clock
        double slowdown;            ///< factor in effect
        sim::Tick phaseUpdateTime;  ///< when slowdown was applied
        sim::Tick phaseStart;       ///< when the current phase began
        sim::Tick serviceStart;
        sim::EventQueue::Handle completionEvent;
    };

    void startBatch(std::vector<workload::Request> requests);
    void startNextFromBuffer();
    void beginPhase(llm::Phase phase);
    void schedulePhaseEnd();
    void phaseEnded();
    void clockChanged();
    void applyDesiredClock();
    void refreshClock();
    void setPhaseActivity();
    double currentSlowdown(llm::Phase phase) const;

    /**
     * Batched configuration: batch size = #requests; input/output
     * sizes are the batch maxima (padded batching — conservative on
     * both power and latency).
     */
    llm::InferenceConfig
    configFor(const std::vector<workload::Request> &batch) const;

    sim::Simulation &sim_;
    power::ServerModel server_;
    // polca-snapshot: skip(phases_, immutable model config set at construction)
    llm::PhaseModel phases_;
    // polca-snapshot: skip(pool_, immutable placement config)
    workload::Priority pool_;
    // polca-snapshot: skip(id_, immutable identity)
    int id_;
    // polca-snapshot: skip(bufferSize_, immutable capacity config)
    std::size_t bufferSize_;
    // polca-snapshot: skip(role_, immutable role config)
    ServerRole role_;
    // polca-snapshot: skip(usedGpus_, fixed GPU assignment from construction)
    std::vector<std::size_t> usedGpus_;
    double powerScale_ = 1.0;
    double policyLockMhz_ = 0.0;     ///< lock commanded via OOB
    double phaseTokenClockMhz_ = 0.0;  ///< phase-aware token clock
    bool crashed_ = false;
    std::uint64_t crashes_ = 0;
    std::uint64_t droppedRequests_ = 0;

    std::optional<ActiveBatch> active_;
    // polca-snapshot: skip(maxBatchSize_, setup-time config; set before warmup)
    std::size_t maxBatchSize_ = 1;
    std::deque<workload::Request> buffer_;
    CompletionCallback onComplete_;
    std::uint64_t completed_ = 0;
    sim::Tick busyTicks_ = 0;

    obs::TraceRecorder *trace_ = nullptr;
    obs::Counter *batchStat_ = nullptr;
    obs::Counter *completionStat_ = nullptr;
    obs::Counter *droppedStat_ = nullptr;
    obs::Counter *promptTicksStat_ = nullptr;
    obs::Counter *tokenTicksStat_ = nullptr;
    obs::Histogram *occupancyStat_ = nullptr;
};

} // namespace polca::cluster

