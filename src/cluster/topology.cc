#include "cluster/topology.hh"

#include <unordered_set>

#include "cluster/allocator.hh"
#include "sim/logging.hh"

namespace polca::cluster {

int
TopologyConfig::numRows() const
{
    int total = 0;
    for (const TopologyRowGroup &group : groups)
        total += group.rows;
    return total;
}

int
TopologyConfig::numServers() const
{
    int total = 0;
    for (const TopologyRowGroup &group : groups)
        total += group.rows * group.racksPerRow * group.serversPerRack;
    return total;
}

power::ServerSpec
serverSpecForPreset(const std::string &preset)
{
    if (preset == "DGX-A100-80GB")
        return power::ServerSpec::dgxA100_80gb();
    if (preset == "DGX-A100-40GB")
        return power::ServerSpec::dgxA100_40gb();
    if (preset == "DGX-H100")
        return power::ServerSpec::dgxH100();
    sim::fatal("topology: unknown server preset '", preset, "'");
    return power::ServerSpec::dgxA100_80gb();  // unreachable
}

namespace {

bool
validGroupName(const std::string &name)
{
    if (name.empty())
        return false;
    for (char c : name) {
        if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
              c == '_'))
            return false;
    }
    return true;
}

} // namespace

Site::Site(sim::Simulation &sim, const TopologyConfig &config,
           const RowConfig &shared, sim::Rng rng)
    : sim_(sim), config_(config)
{
    if (config_.groups.empty())
        sim::fatal("topology: no row groups");

    std::unordered_set<std::string> names;
    double totalRowBudget = 0.0;
    for (const TopologyRowGroup &group : config_.groups) {
        if (!validGroupName(group.name)) {
            sim::fatal("topology: group name '", group.name,
                       "' is not lowercase [a-z0-9_]");
        }
        if (!names.insert(group.name).second)
            sim::fatal("topology: duplicate group name '", group.name, "'");
        if (group.rows <= 0 || group.racksPerRow <= 0 ||
            group.serversPerRack <= 0)
            sim::fatal("topology: non-positive count in group '",
                       group.name, "'");
        int serversPerRow = group.racksPerRow * group.serversPerRack;
        totalRowBudget += group.rows * config_.rowBudgetFraction *
            group.provisionedPerServerWatts * serversPerRow;
    }

    llm::ModelCatalog catalog;

    PowerDomain::Options siteOptions;
    siteOptions.name = "site";
    siteOptions.level = DomainLevel::Site;
    siteOptions.budgetWatts = config_.siteBudgetFraction * totalRowBudget;
    siteOptions.telemetryInterval = config_.telemetryInterval;
    siteOptions.recordSeries = config_.recordSeries;
    root_ = std::make_unique<PowerDomain>(sim_, siteOptions);

    for (const TopologyRowGroup &group : config_.groups) {
        power::ServerSpec spec = serverSpecForPreset(group.server);
        llm::ModelSpec model = catalog.byName(group.model);
        int serversPerRow = group.racksPerRow * group.serversPerRack;
        double rowBudget = config_.rowBudgetFraction *
            group.provisionedPerServerWatts * serversPerRow;

        for (int r = 0; r < group.rows; ++r) {
            SiteRow siteRow;
            siteRow.name = group.name + std::to_string(r);
            siteRow.group = &group;
            siteRow.model = model;
            // Path-keyed stream: depends only on (site seed, row
            // name), never on how many other rows exist.
            siteRow.rng = rng.forkPath(siteRow.name);
            siteRow.dispatcher = std::make_unique<Dispatcher>(
                sim_, siteRow.rng.fork(0x0d15));

            PowerDomain::Options rowOptions;
            rowOptions.name = siteRow.name;
            rowOptions.level = DomainLevel::Row;
            rowOptions.budgetWatts = rowBudget;
            rowOptions.telemetryInterval = config_.telemetryInterval;
            rowOptions.recordSeries = config_.recordSeries;
            PowerDomain &rowDomain = root_->addChild(rowOptions);
            siteRow.domain = &rowDomain;

            std::vector<workload::Priority> priorities =
                allocatePriorities(serversPerRow,
                                   group.lpServerFraction);
            int id = 0;
            for (int k = 0; k < group.racksPerRow; ++k) {
                PowerDomain::Options rackOptions;
                rackOptions.name = "rack" + std::to_string(k);
                rackOptions.level = DomainLevel::Rack;
                rackOptions.telemetryInterval =
                    config_.telemetryInterval;
                PowerDomain &rack = rowDomain.addChild(rackOptions);
                for (int s = 0; s < group.serversPerRack; ++s, ++id) {
                    auto server = std::make_unique<InferenceServer>(
                        sim_, spec, model,
                        priorities[static_cast<std::size_t>(id)], id,
                        shared.bufferSize);
                    if (shared.phaseAwareTokenClockMhz > 0.0) {
                        server->setPhaseAwareTokenClock(
                            shared.phaseAwareTokenClockMhz);
                    }
                    if (shared.maxBatchSize > 1)
                        server->setMaxBatchSize(shared.maxBatchSize);
                    siteRow.dispatcher->addServer(server.get());
                    rack.addServer(std::move(server),
                                   group.provisionedPerServerWatts);
                }
                if (config_.rackBreakerLimitFraction > 0.0) {
                    telemetry::BreakerModel::Config breaker;
                    breaker.provisionedWatts =
                        group.provisionedPerServerWatts *
                        group.serversPerRack;
                    breaker.breakerLimitWatts =
                        breaker.provisionedWatts *
                        config_.rackBreakerLimitFraction;
                    breaker.tripDuration = config_.breakerTripDuration;
                    rack.armBreaker(breaker);
                }
            }
            if (config_.rowBreakerLimitFraction > 0.0) {
                telemetry::BreakerModel::Config breaker;
                breaker.provisionedWatts = rowBudget;
                breaker.breakerLimitWatts =
                    rowBudget * config_.rowBreakerLimitFraction;
                breaker.tripDuration = config_.breakerTripDuration;
                rowDomain.armBreaker(breaker);
            }
            rows_.push_back(std::move(siteRow));
        }
    }

    if (config_.siteBreakerLimitFraction > 0.0) {
        telemetry::BreakerModel::Config breaker;
        breaker.provisionedWatts = root_->budgetWatts();
        breaker.breakerLimitWatts =
            root_->budgetWatts() * config_.siteBreakerLimitFraction;
        breaker.tripDuration = config_.breakerTripDuration;
        root_->armBreaker(breaker);
    }
    root_->finalize();
}

} // namespace polca::cluster
