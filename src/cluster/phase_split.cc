#include "cluster/phase_split.hh"

#include "sim/logging.hh"

namespace polca::cluster {

PhaseSplitCluster::PhaseSplitCluster(sim::Simulation &sim,
                                     PhaseSplitConfig config,
                                     sim::Rng rng)
    : sim_(sim), config_(std::move(config)),
      model_(llm::ModelCatalog().byName(config_.modelName)), rng_(rng)
{
    if (config_.promptServers <= 0 || config_.tokenServers <= 0)
        sim::fatal("PhaseSplitCluster: both pools need servers");

    int id = 0;
    for (int i = 0; i < config_.promptServers; ++i) {
        promptPool_.push_back(std::make_unique<InferenceServer>(
            sim_, config_.serverSpec, model_, workload::Priority::Low,
            id++, config_.bufferSize, ServerRole::PromptOnly));
        promptPool_.back()->setCompletionCallback(
            [this](InferenceServer &,
                   const InferenceServer::Completion &c) {
                // Prompt done: ship the KV cache, then queue the
                // token stage.
                double ms = config_.transferMsPerKtoken *
                    c.request.inputTokens / 1000.0;
                workload::Request tokenStage = c.request;
                sim_.queue().postAfter(
                    sim::msToTicks(ms),
                    [this, tokenStage] { routeToken(tokenStage); },
                    "kv-transfer");
                drain(promptQueue_, promptPool_, false);
            });
    }
    for (int i = 0; i < config_.tokenServers; ++i) {
        tokenPool_.push_back(std::make_unique<InferenceServer>(
            sim_, config_.serverSpec, model_, workload::Priority::Low,
            id++, config_.bufferSize, ServerRole::TokenOnly));
        if (config_.tokenClockMhz > 0.0)
            tokenPool_.back()->applyClockLock(config_.tokenClockMhz);
        tokenPool_.back()->setCompletionCallback(
            [this](InferenceServer &,
                   const InferenceServer::Completion &c) {
                latency_.add(sim::ticksToSeconds(c.latency));
                ++completions_;
                drain(tokenQueue_, tokenPool_, true);
            });
    }
}

void
PhaseSplitCluster::injectTrace(const workload::Trace &trace)
{
    if (trace.empty())
        return;
    sim::Tick when =
        std::max(trace.requests().front().arrival, sim_.now());
    sim_.queue().post(
        when, [this, &trace] { arrive(trace, 0); }, "arrival");
}

void
PhaseSplitCluster::arrive(const workload::Trace &trace,
                          std::size_t index)
{
    routePrompt(trace.requests()[index]);
    std::size_t next = index + 1;
    if (next < trace.size()) {
        sim::Tick when = std::max(trace.requests()[next].arrival,
                                  sim_.now());
        sim_.queue().post(
            when, [this, &trace, next] { arrive(trace, next); },
            "arrival");
    }
}

InferenceServer *
PhaseSplitCluster::pick(
    std::vector<std::unique_ptr<InferenceServer>> &pool)
{
    std::vector<InferenceServer *> idle;
    std::vector<InferenceServer *> buffered;
    for (auto &server : pool) {
        if (server->idleNow())
            idle.push_back(server.get());
        else if (server->bufferFree())
            buffered.push_back(server.get());
    }
    auto choose = [this](std::vector<InferenceServer *> &candidates) {
        auto i = static_cast<std::size_t>(rng_.uniformInt(
            0, static_cast<std::int64_t>(candidates.size()) - 1));
        return candidates[i];
    };
    if (!idle.empty())
        return choose(idle);
    if (!buffered.empty())
        return choose(buffered);
    return nullptr;
}

void
PhaseSplitCluster::routePrompt(const workload::Request &request)
{
    if (InferenceServer *server = pick(promptPool_))
        server->submit(request);
    else
        promptQueue_.push_back(request);
}

void
PhaseSplitCluster::routeToken(const workload::Request &request)
{
    if (InferenceServer *server = pick(tokenPool_))
        server->submit(request);
    else
        tokenQueue_.push_back(request);
}

void
PhaseSplitCluster::drain(
    std::deque<workload::Request> &queue,
    std::vector<std::unique_ptr<InferenceServer>> &pool, bool)
{
    while (!queue.empty()) {
        InferenceServer *server = pick(pool);
        if (!server)
            return;
        server->submit(queue.front());
        queue.pop_front();
    }
}

double
PhaseSplitCluster::powerWatts() const
{
    double total = 0.0;
    for (const auto &server : promptPool_)
        total += server->powerWatts();
    for (const auto &server : tokenPool_)
        total += server->powerWatts();
    return total;
}

std::vector<InferenceServer *>
PhaseSplitCluster::servers()
{
    std::vector<InferenceServer *> out;
    for (auto &server : promptPool_)
        out.push_back(server.get());
    for (auto &server : tokenPool_)
        out.push_back(server.get());
    return out;
}

} // namespace polca::cluster
