/**
 * @file
 * Recursive power-domain tree: servers → racks → rows → sites.
 *
 * The paper provisions and oversubscribes power per row (Figure 2,
 * Table 2), but rows compose into sites with their own upstream
 * breakers and budgets, and site-level power must be synthesized
 * compositionally from the per-server draws (Wilkins et al., "From
 * Servers to Sites").  A PowerDomain models one node of that tree:
 * every non-leaf level owns an oversubscription budget, an
 * aggregating telemetry::DomainManager that rolls child readings up
 * on its own cadence, and (optionally) a telemetry::BreakerModel —
 * so a site breaker can trip while every row is in budget, and vice
 * versa.  Leaves wrap one InferenceServer (or, for tests, an
 * arbitrary power source).
 *
 * The flat Row/Datacenter layer is a thin view over this tree: a
 * legacy row is a row-level domain whose children are server leaves,
 * and a datacenter is a site-level domain of such rows.
 */

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/inference_server.hh"
#include "sim/simulation.hh"
#include "telemetry/breaker_model.hh"
#include "telemetry/domain_manager.hh"

namespace polca::cluster {

/** Tree levels, leaf to root. */
enum class DomainLevel
{
    Server,
    Rack,
    Row,
    Site,
};

const char *toString(DomainLevel level);

/**
 * One node of the power-domain tree.  Domains own their children;
 * build the tree root-down with addChild()/addServer()/addLeaf(),
 * then finalize() the root once to wire each non-leaf manager to its
 * children (one power source per child, in child order — so a
 * parent's reading is bit-for-bit the left-to-right sum of its
 * children's readings) and start every manager and armed breaker.
 */
class PowerDomain
{
    /** Passkey: lets make_unique reach the child constructor while
     *  keeping tree construction behind addChild()/addLeaf(). */
    struct Internal
    {
        explicit Internal() = default;
    };

  public:
    using PowerSource = std::function<double()>;

    struct Options
    {
        /** Node name; path() joins ancestor names with dots, so the
         *  name doubles as a metric-path segment ("row3", "rack1"). */
        std::string name = "domain";

        DomainLevel level = DomainLevel::Row;

        /**
         * Oversubscription budget in watts; overdraw and utilization
         * at this level are accounted against it.  0 means "not
         * oversubscribed": the budget equals the nameplate
         * provisioned sum of the subtree's leaves.
         */
        double budgetWatts = 0.0;

        /** Cadence of this domain's aggregating DomainManager;
         *  0 gives the node no manager of its own. */
        sim::Tick telemetryInterval = 0;

        /** Record the manager's full reading series. */
        bool recordSeries = false;
    };

    /** Construct a tree root. */
    PowerDomain(sim::Simulation &sim, Options options);

    /** Child constructor (via addChild(); public only for the
     *  Internal passkey). */
    PowerDomain(Internal, sim::Simulation &sim, Options options,
                PowerDomain *parent);

    PowerDomain(const PowerDomain &) = delete;
    PowerDomain &operator=(const PowerDomain &) = delete;

    /** @name Tree construction (before finalize()) */
    /** @{ */
    /** Add an interior child domain. */
    PowerDomain &addChild(Options options);

    /** Add a leaf child wrapping @p server, provisioned at
     *  @p budgetWatts nameplate.  @return the adopted server. */
    InferenceServer &addServer(std::unique_ptr<InferenceServer> server,
                               double budgetWatts);

    /** Add a leaf child over an arbitrary power source (synthetic
     *  loads in tests, non-server equipment). */
    PowerDomain &addLeaf(std::string name, PowerSource supply,
                         double budgetWatts);

    /**
     * Arm a breaker over this domain's instantaneous draw.  Zero
     * Config::provisionedWatts defaults to budgetWatts().  Started
     * by finalize() (immediately, when already finalized).
     */
    void armBreaker(telemetry::BreakerModel::Config config);

    /** Recursively wire managers to children and start managers and
     *  breakers.  Idempotent; call once on the root. */
    void finalize();
    /** @} */

    /** @name Identity and structure */
    /** @{ */
    const std::string &name() const { return options_.name; }

    /** Dotted path from the root ("site.row3.rack1"); doubles as
     *  the domain's metric namespace. */
    std::string path() const;

    DomainLevel level() const { return options_.level; }

    const PowerDomain *parent() const { return parent_; }

    bool isLeaf() const { return children_.empty(); }

    const std::vector<std::unique_ptr<PowerDomain>> &children() const
    {
        return children_;
    }

    /** Wrapped server; null unless this is a server leaf. */
    InferenceServer *server() { return server_.get(); }
    const InferenceServer *server() const { return server_.get(); }

    /** Server leaves in this subtree. */
    int numServers() const;

    /** All subtree servers, in deterministic construction order. */
    std::vector<InferenceServer *> servers();
    std::vector<const InferenceServer *> servers() const;

    /** Subtree servers in the @p priority pool. */
    std::vector<InferenceServer *> pool(workload::Priority priority);
    /** @} */

    /** @name Power accounting */
    /** @{ */
    /** Instantaneous subtree draw, watts.  Computed child by child,
     *  so a parent's value is exactly the left-to-right sum of its
     *  children's values at the same instant. */
    double powerWatts() const;

    /** Nameplate provisioned power: the sum of leaf budgets. */
    double provisionedWatts() const;

    /** Oversubscription budget (explicit, or provisionedWatts()
     *  when none was set). */
    double budgetWatts() const;

    /**
     * The budget this domain can actually count on once every
     * ancestor's budget is shared out: the minimum over this domain
     * and its ancestors of (ancestor budget x this subtree's share
     * of the ancestor's provisioned power).  A power manager
     * attached at this level caps against this value, which is how
     * a row manager becomes aware of a site budget tighter than the
     * sum of row budgets.
     */
    double effectiveBudgetWatts() const;
    /** @} */

    /** @name Telemetry and protection */
    /** @{ */
    /** Aggregating manager; null for leaves and interval-0 nodes. */
    telemetry::DomainManager *manager() { return manager_.get(); }
    const telemetry::DomainManager *manager() const
    {
        return manager_.get();
    }

    /** Breaker; null unless armBreaker() was called. */
    telemetry::BreakerModel *breaker() { return breaker_.get(); }
    const telemetry::BreakerModel *breaker() const
    {
        return breaker_.get();
    }
    /** @} */

    /** Pre-order traversal of the subtree. */
    void visit(const std::function<void(PowerDomain &)> &fn);
    void visit(const std::function<void(const PowerDomain &)> &fn) const;

  private:
    sim::Simulation &sim_;
    Options options_;
    PowerDomain *parent_ = nullptr;
    std::vector<std::unique_ptr<PowerDomain>> children_;

    /** Exactly one of server_/supply_ is set on leaves. */
    std::unique_ptr<InferenceServer> server_;
    PowerSource supply_;
    double leafBudgetWatts_ = 0.0;

    std::unique_ptr<telemetry::DomainManager> manager_;
    std::unique_ptr<telemetry::BreakerModel> breaker_;
    bool finalized_ = false;
};

} // namespace polca::cluster
