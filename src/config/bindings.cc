#include "config/bindings.hh"

namespace polca::config {

namespace {

using llm::Architecture;
using workload::Priority;

std::vector<std::pair<std::string, Priority>>
priorityNames()
{
    return {{"low", Priority::Low}, {"high", Priority::High}};
}

std::vector<std::pair<std::string, Architecture>>
architectureNames()
{
    return {{"encoder", Architecture::Encoder},
            {"decoder", Architecture::Decoder},
            {"encoder-decoder", Architecture::EncoderDecoder}};
}

std::vector<std::pair<std::string, faults::SensorFaultMode>>
sensorModeNames()
{
    return {{"bias", faults::SensorFaultMode::Bias},
            {"noise", faults::SensorFaultMode::Noise},
            {"stuck-at-last", faults::SensorFaultMode::StuckAtLast}};
}

} // namespace

const StructSchema<power::GpuSpec> &
gpuSpecSchema()
{
    static const StructSchema<power::GpuSpec> schema = [] {
        StructSchema<power::GpuSpec> s("row.server.gpu");
        s.stringField("name", &power::GpuSpec::name)
            .field("tdp_watts", &power::GpuSpec::tdpWatts,
                   Unit::Watts, 50.0, 5000.0)
            .field("idle_watts", &power::GpuSpec::idleWatts,
                   Unit::Watts, 0.0, 1000.0)
            .field("max_sm_clock_mhz", &power::GpuSpec::maxSmClockMhz,
                   Unit::Megahertz, 100.0, 10000.0)
            .field("base_sm_clock_mhz",
                   &power::GpuSpec::baseSmClockMhz, Unit::Megahertz,
                   100.0, 10000.0)
            .field("min_sm_clock_mhz", &power::GpuSpec::minSmClockMhz,
                   Unit::Megahertz, 10.0, 10000.0)
            .field("power_brake_clock_mhz",
                   &power::GpuSpec::powerBrakeClockMhz,
                   Unit::Megahertz, 10.0, 10000.0)
            .field("min_power_cap_watts",
                   &power::GpuSpec::minPowerCapWatts, Unit::Watts,
                   10.0, 5000.0)
            .field("max_power_cap_watts",
                   &power::GpuSpec::maxPowerCapWatts, Unit::Watts,
                   10.0, 5000.0)
            .field("compute_dyn_watts",
                   &power::GpuSpec::computeDynWatts, Unit::Watts, 0.0,
                   5000.0)
            .field("memory_dyn_watts",
                   &power::GpuSpec::memoryDynWatts, Unit::Watts, 0.0,
                   5000.0)
            .field("compute_clock_exponent",
                   &power::GpuSpec::computeClockExponent, Unit::None,
                   0.1, 5.0)
            .field("memory_clock_exponent",
                   &power::GpuSpec::memoryClockExponent, Unit::None,
                   0.0, 5.0)
            .field("memory_gb", &power::GpuSpec::memoryGb, Unit::None,
                   1.0, 10000.0);
        return s;
    }();
    return schema;
}

const StructSchema<power::ServerSpec> &
serverSpecSchema()
{
    static const StructSchema<power::ServerSpec> schema = [] {
        StructSchema<power::ServerSpec> s("row.server");
        s.stringField("name", &power::ServerSpec::name)
            .intField("num_gpus", &power::ServerSpec::numGpus, 1, 64)
            .field("rated_power_watts",
                   &power::ServerSpec::ratedPowerWatts, Unit::Watts,
                   500.0, 100000.0)
            .field("host_idle_watts",
                   &power::ServerSpec::hostIdleWatts, Unit::Watts,
                   0.0, 20000.0)
            .field("host_gpu_tracking_factor",
                   &power::ServerSpec::hostGpuTrackingFactor,
                   Unit::None, 0.0, 2.0)
            .field("provisioned_fans_watts",
                   &power::ServerSpec::provisionedFansWatts,
                   Unit::Watts, 0.0, 20000.0)
            .field("provisioned_cpu_watts",
                   &power::ServerSpec::provisionedCpuWatts,
                   Unit::Watts, 0.0, 20000.0)
            .field("provisioned_memory_watts",
                   &power::ServerSpec::provisionedMemoryWatts,
                   Unit::Watts, 0.0, 20000.0)
            .field("provisioned_other_watts",
                   &power::ServerSpec::provisionedOtherWatts,
                   Unit::Watts, 0.0, 20000.0);
        return s;
    }();
    return schema;
}

const StructSchema<llm::ModelSpec> &
modelSpecSchema()
{
    static const StructSchema<llm::ModelSpec> schema = [] {
        StructSchema<llm::ModelSpec> s("model");
        s.stringField("name", &llm::ModelSpec::name)
            .enumField("architecture", &llm::ModelSpec::architecture,
                       architectureNames())
            .field("params_billions", &llm::ModelSpec::paramsBillions,
                   Unit::None, 0.001, 10000.0)
            .intField("inference_gpus", &llm::ModelSpec::inferenceGpus,
                      1, 64)
            .boolField("trainable", &llm::ModelSpec::trainable)
            .field("prompt_ms_per_ktoken",
                   &llm::ModelSpec::promptMsPerKtoken, Unit::None,
                   0.01, 100000.0)
            .field("token_time_ms", &llm::ModelSpec::tokenTimeMs,
                   Unit::None, 0.01, 100000.0)
            .field("token_batch_factor",
                   &llm::ModelSpec::tokenBatchFactor, Unit::None, 0.0,
                   10.0)
            .field("prompt_compute_base",
                   &llm::ModelSpec::promptComputeBase, Unit::None,
                   0.0, 4.0)
            .field("prompt_compute_max",
                   &llm::ModelSpec::promptComputeMax, Unit::None, 0.0,
                   4.0)
            .field("prompt_mem_activity",
                   &llm::ModelSpec::promptMemActivity, Unit::None,
                   0.0, 4.0)
            .field("token_compute_base",
                   &llm::ModelSpec::tokenComputeBase, Unit::None, 0.0,
                   4.0)
            .field("token_mem_activity",
                   &llm::ModelSpec::tokenMemActivity, Unit::None, 0.0,
                   4.0)
            .field("prompt_compute_bound_fraction",
                   &llm::ModelSpec::promptComputeBoundFraction,
                   Unit::Fraction, 0.0, 1.0)
            .field("token_compute_bound_fraction",
                   &llm::ModelSpec::tokenComputeBoundFraction,
                   Unit::Fraction, 0.0, 1.0);
        return s;
    }();
    return schema;
}

const StructSchema<workload::WorkloadSpec> &
workloadSpecSchema()
{
    static const StructSchema<workload::WorkloadSpec> schema = [] {
        StructSchema<workload::WorkloadSpec> s("workload.mix");
        s.stringField("name", &workload::WorkloadSpec::name)
            .intField("prompt_min", &workload::WorkloadSpec::promptMin,
                      1, 1000000)
            .intField("prompt_max", &workload::WorkloadSpec::promptMax,
                      1, 1000000)
            .intField("output_min", &workload::WorkloadSpec::outputMin,
                      1, 1000000)
            .intField("output_max", &workload::WorkloadSpec::outputMax,
                      1, 1000000)
            .field("traffic_fraction",
                   &workload::WorkloadSpec::trafficFraction,
                   Unit::Fraction, 0.0, 1.0)
            .field("high_priority_fraction",
                   &workload::WorkloadSpec::highPriorityFraction,
                   Unit::Fraction, 0.0, 1.0);
        return s;
    }();
    return schema;
}

const StructSchema<workload::DiurnalModel::Params> &
diurnalSchema()
{
    static const StructSchema<workload::DiurnalModel::Params> schema =
        [] {
            StructSchema<workload::DiurnalModel::Params> s(
                "workload.diurnal");
            using P = workload::DiurnalModel::Params;
            s.field("base_utilization", &P::baseUtilization,
                    Unit::Fraction, 0.0, 1.0)
                .field("daily_amplitude", &P::dailyAmplitude,
                       Unit::Fraction, 0.0, 1.0)
                .field("weekend_dip", &P::weekendDip, Unit::Fraction,
                       0.0, 1.0)
                .field("noise_amplitude", &P::noiseAmplitude,
                       Unit::Fraction, 0.0, 1.0)
                .field("noise_corr_seconds", &P::noiseCorrSeconds,
                       Unit::Seconds, 1.0, 1e6)
                .field("peak_seconds_of_day", &P::peakSecondsOfDay,
                       Unit::Seconds, 0.0, 86400.0)
                .field("min_utilization", &P::minUtilization,
                       Unit::Fraction, 0.0, 1.0)
                .field("max_utilization", &P::maxUtilization,
                       Unit::Fraction, 0.0, 1.0);
            return s;
        }();
    return schema;
}

const StructSchema<cluster::RowConfig> &
rowConfigSchema()
{
    static const StructSchema<cluster::RowConfig> schema = [] {
        StructSchema<cluster::RowConfig> s("row");
        s.stringField("model", &cluster::RowConfig::modelName)
            .intField("base_servers",
                      &cluster::RowConfig::baseServers, 1, 100000)
            .field("added_server_fraction",
                   &cluster::RowConfig::addedServerFraction,
                   Unit::Fraction, 0.0, 5.0)
            .field("lp_server_fraction",
                   &cluster::RowConfig::lpServerFraction,
                   Unit::Fraction, 0.0, 1.0)
            .field("provisioned_per_server_watts",
                   &cluster::RowConfig::provisionedPerServerWatts,
                   Unit::Watts, 100.0, 100000.0)
            .tickField("telemetry_interval",
                       &cluster::RowConfig::telemetryInterval, 0.01,
                       3600.0)
            .intField("buffer_size", &cluster::RowConfig::bufferSize,
                      0, 100000)
            .intField("max_batch_size",
                      &cluster::RowConfig::maxBatchSize, 1, 4096)
            .field("phase_aware_token_clock_mhz",
                   &cluster::RowConfig::phaseAwareTokenClockMhz,
                   Unit::Megahertz, 0.0, 10000.0)
            .field("telemetry_dropout_probability",
                   &cluster::RowConfig::telemetryDropoutProbability,
                   Unit::Fraction, 0.0, 1.0)
            .boolField("record_power_series",
                       &cluster::RowConfig::recordPowerSeries);
        return s;
    }();
    return schema;
}

const StructSchema<cluster::TopologyConfig> &
topologyConfigSchema()
{
    static const StructSchema<cluster::TopologyConfig> schema = [] {
        StructSchema<cluster::TopologyConfig> s("topology");
        using T = cluster::TopologyConfig;
        s.boolField("enabled", &T::enabled)
            .tickField("telemetry_interval", &T::telemetryInterval,
                       0.01, 3600.0)
            .field("row_budget_fraction", &T::rowBudgetFraction,
                   Unit::Fraction, 0.05, 2.0)
            .field("site_budget_fraction", &T::siteBudgetFraction,
                   Unit::Fraction, 0.05, 2.0)
            // 0 disarms the breaker at that level.
            .field("rack_breaker_limit_fraction",
                   &T::rackBreakerLimitFraction, Unit::Fraction, 0.0,
                   5.0)
            .field("row_breaker_limit_fraction",
                   &T::rowBreakerLimitFraction, Unit::Fraction, 0.0,
                   5.0)
            .field("site_breaker_limit_fraction",
                   &T::siteBreakerLimitFraction, Unit::Fraction, 0.0,
                   5.0)
            .tickField("breaker_trip_duration",
                       &T::breakerTripDuration, 0.1, 86400.0)
            .boolField("manage_rows", &T::manageRows)
            .boolField("record_series", &T::recordSeries);
        return s;
    }();
    return schema;
}

const StructSchema<cluster::TopologyRowGroup> &
topologyRowGroupSchema()
{
    static const StructSchema<cluster::TopologyRowGroup> schema = [] {
        StructSchema<cluster::TopologyRowGroup> s("topology.rows");
        using G = cluster::TopologyRowGroup;
        s.stringField("name", &G::name)
            .intField("rows", &G::rows, 1, 10000)
            .intField("racks_per_row", &G::racksPerRow, 1, 1000)
            .intField("servers_per_rack", &G::serversPerRack, 1, 1000)
            .stringField("server", &G::server)
            .stringField("model", &G::model)
            .field("lp_server_fraction", &G::lpServerFraction,
                   Unit::Fraction, 0.0, 1.0)
            .field("provisioned_per_server_watts",
                   &G::provisionedPerServerWatts, Unit::Watts, 100.0,
                   100000.0);
        return s;
    }();
    return schema;
}

const StructSchema<core::ThresholdRule> &
thresholdRuleSchema()
{
    static const StructSchema<core::ThresholdRule> schema = [] {
        StructSchema<core::ThresholdRule> s("policy.rules");
        s.stringField("name", &core::ThresholdRule::name)
            .enumField("target", &core::ThresholdRule::target,
                       priorityNames())
            .field("cap_at", &core::ThresholdRule::capFraction,
                   Unit::Fraction, 0.01, 1.5)
            .field("uncap_at", &core::ThresholdRule::uncapFraction,
                   Unit::Fraction, 0.0, 1.5)
            .field("lock_mhz", &core::ThresholdRule::lockMhz,
                   Unit::Megahertz, 10.0, 10000.0);
        return s;
    }();
    return schema;
}

const StructSchema<core::PolicyConfig> &
policyConfigSchema()
{
    static const StructSchema<core::PolicyConfig> schema = [] {
        StructSchema<core::PolicyConfig> s("policy");
        s.stringField("name", &core::PolicyConfig::name)
            .field("power_brake_fraction",
                   &core::PolicyConfig::powerBrakeFraction,
                   Unit::Fraction, 0.1, 2.0)
            .field("power_brake_release_fraction",
                   &core::PolicyConfig::powerBrakeReleaseFraction,
                   Unit::Fraction, 0.05, 2.0)
            .boolField("power_brake_enabled",
                       &core::PolicyConfig::powerBrakeEnabled);
        return s;
    }();
    return schema;
}

const StructSchema<core::ManagerOptions> &
managerOptionsSchema()
{
    static const StructSchema<core::ManagerOptions> schema = [] {
        StructSchema<core::ManagerOptions> s("manager");
        using M = core::ManagerOptions;
        s.tickField("oob_command_latency", &M::oobCommandLatency, 0.0,
                    3600.0)
            .tickField("brake_latency", &M::brakeLatency, 0.0, 3600.0)
            .tickField("min_brake_hold", &M::minBrakeHold, 0.0,
                       86400.0)
            .field("smbpbi_failure_probability",
                   &M::smbpbiFailureProbability, Unit::Fraction, 0.0,
                   1.0)
            .tickField("verify_slack", &M::verifySlack, 0.0, 3600.0)
            .tickField("decision_smoothing_window",
                       &M::decisionSmoothingWindow, 0.0, 86400.0)
            .tickField("min_rule_dwell", &M::minRuleDwell, 0.0,
                       86400.0)
            .boolField("watchdog_enabled", &M::watchdogEnabled)
            .tickField("watchdog_interval", &M::watchdogInterval,
                       0.01, 3600.0)
            .tickField("watchdog_timeout", &M::watchdogTimeout, 0.01,
                       86400.0)
            .tickField("stale_warn_timeout", &M::staleWarnTimeout,
                       0.01, 86400.0)
            .boolField("fail_safe_engage_brake",
                       &M::failSafeEngageBrake)
            .intField("channel_flag_threshold",
                      &M::channelFlagThreshold, 1, 1000000);
        return s;
    }();
    return schema;
}

const StructSchema<core::ExperimentConfig> &
experimentSchema()
{
    static const StructSchema<core::ExperimentConfig> schema = [] {
        StructSchema<core::ExperimentConfig> s("experiment");
        using E = core::ExperimentConfig;
        s.boolField("managed", &E::managed)
            .tickField("duration", &E::duration, 1.0, 365.0 * 86400.0)
            .tickField("warmup", &E::warmup, 0.0, 365.0 * 86400.0)
            .intField("seed", &E::seed, 0,
                      std::numeric_limits<long long>::max())
            .field("power_scale_factor", &E::powerScaleFactor,
                   Unit::Fraction, 0.1, 10.0)
            .boolField("record_row_series", &E::recordRowSeries)
            .boolField("auto_balance_pools", &E::autoBalancePools)
            .boolField("model_breaker", &E::modelBreaker)
            .field("breaker_limit_fraction", &E::breakerLimitFraction,
                   Unit::Fraction, 0.5, 5.0)
            .tickField("breaker_trip_duration",
                       &E::breakerTripDuration, 0.1, 86400.0);
        return s;
    }();
    return schema;
}

const StructSchema<faults::BlackoutWindow> &
blackoutSchema()
{
    static const StructSchema<faults::BlackoutWindow> schema = [] {
        StructSchema<faults::BlackoutWindow> s("faults.blackouts");
        s.tickField("start", &faults::BlackoutWindow::start, 0.0,
                    365.0 * 86400.0)
            .tickField("duration", &faults::BlackoutWindow::duration,
                       0.0, 365.0 * 86400.0);
        return s;
    }();
    return schema;
}

const StructSchema<faults::BurstyLoss> &
burstyLossSchema()
{
    static const StructSchema<faults::BurstyLoss> schema = [] {
        StructSchema<faults::BurstyLoss> s("faults.bursty_loss");
        using B = faults::BurstyLoss;
        s.boolField("enabled", &B::enabled)
            .field("enter_burst_probability",
                   &B::enterBurstProbability, Unit::Fraction, 0.0,
                   1.0)
            .field("exit_burst_probability", &B::exitBurstProbability,
                   Unit::Fraction, 0.0, 1.0)
            .field("good_loss_probability", &B::goodLossProbability,
                   Unit::Fraction, 0.0, 1.0)
            .field("burst_loss_probability", &B::burstLossProbability,
                   Unit::Fraction, 0.0, 1.0);
        return s;
    }();
    return schema;
}

const StructSchema<faults::SensorFault> &
sensorFaultSchema()
{
    static const StructSchema<faults::SensorFault> schema = [] {
        StructSchema<faults::SensorFault> s("faults.sensor_faults");
        using F = faults::SensorFault;
        s.tickField("start", &F::start, 0.0, 365.0 * 86400.0)
            .tickField("duration", &F::duration, 0.0,
                       365.0 * 86400.0)
            .enumField("mode", &F::mode, sensorModeNames())
            .field("bias_watts", &F::biasWatts, Unit::Watts, -1e6,
                   1e6)
            .field("noise_stddev_watts", &F::noiseStddevWatts,
                   Unit::Watts, 0.0, 1e6);
        return s;
    }();
    return schema;
}

const StructSchema<faults::OobOutage> &
oobOutageSchema()
{
    static const StructSchema<faults::OobOutage> schema = [] {
        StructSchema<faults::OobOutage> s("faults.oob_outages");
        s.tickField("start", &faults::OobOutage::start, 0.0,
                    365.0 * 86400.0)
            .tickField("duration", &faults::OobOutage::duration, 0.0,
                       365.0 * 86400.0);
        return s;
    }();
    return schema;
}

const StructSchema<faults::ServerCrash> &
serverCrashSchema()
{
    static const StructSchema<faults::ServerCrash> schema = [] {
        StructSchema<faults::ServerCrash> s("faults.crashes");
        s.tickField("at", &faults::ServerCrash::at, 0.0,
                    365.0 * 86400.0)
            .tickField("downtime", &faults::ServerCrash::downtime,
                       0.0, 365.0 * 86400.0)
            .intField("server_index",
                      &faults::ServerCrash::serverIndex, 0, 1000000)
            .boolField("permanent", &faults::ServerCrash::permanent);
        return s;
    }();
    return schema;
}

const StructSchema<faults::ControllerCrash> &
controllerCrashSchema()
{
    static const StructSchema<faults::ControllerCrash> schema = [] {
        StructSchema<faults::ControllerCrash> s(
            "faults.controller_crashes");
        using C = faults::ControllerCrash;
        s.tickField("at", &C::at, 0.0, 365.0 * 86400.0)
            .tickField("downtime", &C::downtime, 0.0, 365.0 * 86400.0)
            .boolField("cold_restart", &C::coldRestart);
        return s;
    }();
    return schema;
}

const StructSchema<faults::ChaosConfig> &
chaosConfigSchema()
{
    static const StructSchema<faults::ChaosConfig> schema = [] {
        StructSchema<faults::ChaosConfig> s("chaos");
        using C = faults::ChaosConfig;
        s.boolField("enabled", &C::enabled)
            .field("intensity", &C::intensity, Unit::Fraction, 0.0,
                   10.0)
            .intField("blackout_count_max", &C::blackoutCountMax, 0,
                      1000)
            .tickField("blackout_duration_min",
                       &C::blackoutDurationMin, 1.0, 365.0 * 86400.0)
            .tickField("blackout_duration_max",
                       &C::blackoutDurationMax, 1.0, 365.0 * 86400.0)
            .field("bursty_probability", &C::burstyProbability,
                   Unit::Fraction, 0.0, 1.0)
            .intField("sensor_fault_count_max",
                      &C::sensorFaultCountMax, 0, 1000)
            .tickField("sensor_fault_duration_min",
                       &C::sensorFaultDurationMin, 1.0,
                       365.0 * 86400.0)
            .tickField("sensor_fault_duration_max",
                       &C::sensorFaultDurationMax, 1.0,
                       365.0 * 86400.0)
            .field("sensor_bias_weight", &C::sensorBiasWeight,
                   Unit::Fraction, 0.0, 1000.0)
            .field("sensor_noise_weight", &C::sensorNoiseWeight,
                   Unit::Fraction, 0.0, 1000.0)
            .field("sensor_stuck_weight", &C::sensorStuckWeight,
                   Unit::Fraction, 0.0, 1000.0)
            .field("sensor_bias_max_watts", &C::sensorBiasMaxWatts,
                   Unit::Watts, 0.0, 1e7)
            .field("sensor_noise_max_stddev_watts",
                   &C::sensorNoiseMaxStddevWatts, Unit::Watts, 0.0,
                   1e7)
            .intField("oob_outage_count_max", &C::oobOutageCountMax,
                      0, 1000)
            .tickField("oob_outage_duration_min",
                       &C::oobOutageDurationMin, 1.0,
                       365.0 * 86400.0)
            .tickField("oob_outage_duration_max",
                       &C::oobOutageDurationMax, 1.0,
                       365.0 * 86400.0)
            .field("oob_blackout_correlation",
                   &C::oobBlackoutCorrelation, Unit::Fraction, 0.0,
                   1.0)
            .intField("crash_count_max", &C::crashCountMax, 0, 1000)
            .tickField("crash_downtime_min", &C::crashDowntimeMin,
                       1.0, 365.0 * 86400.0)
            .tickField("crash_downtime_max", &C::crashDowntimeMax,
                       1.0, 365.0 * 86400.0)
            .intField("controller_crash_count_max",
                      &C::controllerCrashCountMax, 0, 1000)
            .tickField("controller_downtime_min",
                       &C::controllerDowntimeMin, 1.0,
                       365.0 * 86400.0)
            .tickField("controller_downtime_max",
                       &C::controllerDowntimeMax, 1.0,
                       365.0 * 86400.0)
            .field("controller_cold_restart_probability",
                   &C::controllerColdRestartProbability,
                   Unit::Fraction, 0.0, 1.0);
        return s;
    }();
    return schema;
}

const StructSchema<core::SafetyOptions> &
safetyOptionsSchema()
{
    static const StructSchema<core::SafetyOptions> schema = [] {
        StructSchema<core::SafetyOptions> s("safety");
        using O = core::SafetyOptions;
        s.boolField("monitor", &O::monitor)
            .tickField("check_interval", &O::checkInterval, 0.01,
                       3600.0)
            .tickField("fail_safe_margin", &O::failSafeMargin, 0.0,
                       86400.0)
            .tickField("cap_release_deadline", &O::capReleaseDeadline,
                       1.0, 7.0 * 86400.0)
            .field("max_brake_time_fraction",
                   &O::maxBrakeTimeFraction, Unit::Fraction, 0.0,
                   1.0);
        return s;
    }();
    return schema;
}

const StructSchema<core::ObsOptions> &
obsOptionsSchema()
{
    static const StructSchema<core::ObsOptions> schema = [] {
        StructSchema<core::ObsOptions> s("obs");
        // 0 = interval stats disabled.
        s.tickField("interval", &core::ObsOptions::metricsInterval,
                    0.0, 365.0 * 86400.0);
        return s;
    }();
    return schema;
}

} // namespace polca::config
