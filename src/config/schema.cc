#include "config/schema.hh"

#include <cctype>
#include <charconv>
#include <cmath>

namespace polca::config {

namespace {

/** Known unit suffixes and the factor into each canonical unit. */
struct Suffix
{
    const char *text;
    Unit unit;
    double factor;
};

constexpr Suffix suffixes[] = {
    {"%", Unit::Fraction, 0.01},
    {"ms", Unit::Seconds, 0.001},
    {"min", Unit::Seconds, 60.0},
    {"s", Unit::Seconds, 1.0},
    {"h", Unit::Seconds, 3600.0},
    {"d", Unit::Seconds, 86400.0},
    {"kW", Unit::Watts, 1000.0},
    {"MW", Unit::Watts, 1e6},
    {"W", Unit::Watts, 1.0},
    {"MHz", Unit::Megahertz, 1.0},
    {"GHz", Unit::Megahertz, 1000.0},
};

const char *
unitName(Unit unit)
{
    switch (unit) {
      case Unit::None:
        return "number";
      case Unit::Fraction:
        return "fraction (or %)";
      case Unit::Seconds:
        return "duration (ms/s/min/h/d)";
      case Unit::Watts:
        return "power (W/kW/MW)";
      case Unit::Megahertz:
        return "frequency (MHz/GHz)";
    }
    return "?";
}

bool
parseBareDouble(const std::string &text, double &out)
{
    const char *begin = text.data();
    const char *end = begin + text.size();
    auto [ptr, ec] = std::from_chars(begin, end, out);
    return ec == std::errc() && ptr == end;
}

} // namespace

bool
parseNumberToken(const std::string &raw, Unit unit, double &out,
                 std::string &err)
{
    if (raw.empty()) {
        err = "empty value";
        return false;
    }

    // Split off the longest trailing run of unit characters.
    std::size_t suffixStart = raw.size();
    while (suffixStart > 0) {
        char c = raw[suffixStart - 1];
        bool unitChar = std::isalpha(static_cast<unsigned char>(c)) ||
            c == '%';
        // 'e'/'E' may belong to an exponent ("1e6"): only treat the
        // tail as a suffix if the remaining head still parses.
        if (!unitChar)
            break;
        --suffixStart;
    }
    std::string head = raw.substr(0, suffixStart);
    std::string suffix = raw.substr(suffixStart);

    double value = 0.0;
    if (suffix.empty()) {
        if (!parseBareDouble(raw, value)) {
            err = "malformed number '" + raw + "'";
            return false;
        }
        out = value;
        return true;
    }

    // Exponent notation: "1e6" splits to head "1" suffix "e6"? No —
    // the suffix run above only eats alphabetic chars, and "e6" stops
    // at the digit.  "1E" style malformed input lands here and fails
    // suffix lookup below, which is the right outcome.
    if (!parseBareDouble(head, value)) {
        err = "malformed number '" + raw + "'";
        return false;
    }
    for (const Suffix &s : suffixes) {
        if (suffix == s.text) {
            if (s.unit != unit) {
                err = "unit '" + suffix + "' does not fit a " +
                    unitName(unit) + " field (value '" + raw + "')";
                return false;
            }
            out = value * s.factor;
            return true;
        }
    }
    err = "unknown unit suffix '" + suffix + "' in '" + raw +
        "' (expected " + unitName(unit) + ")";
    return false;
}

bool
parseIntToken(const std::string &raw, long long &out,
              std::string &err)
{
    if (raw.empty()) {
        err = "empty value";
        return false;
    }
    const char *begin = raw.data();
    const char *end = begin + raw.size();
    auto [ptr, ec] = std::from_chars(begin, end, out);
    if (ec != std::errc() || ptr != end) {
        err = "malformed integer '" + raw + "'";
        return false;
    }
    return true;
}

bool
parseBoolToken(const std::string &raw, bool &out, std::string &err)
{
    if (raw == "true" || raw == "1") {
        out = true;
        return true;
    }
    if (raw == "false" || raw == "0") {
        out = false;
        return true;
    }
    err = "expected true or false, got '" + raw + "'";
    return false;
}

bool
parseStringToken(const std::string &raw, std::string &out,
                 std::string &err)
{
    if (raw.empty()) {
        err = "empty value";
        return false;
    }
    if (raw.front() != '"') {
        out = raw;
        return true;
    }
    if (raw.size() < 2 || raw.back() != '"') {
        err = "unterminated string " + raw;
        return false;
    }
    out.clear();
    for (std::size_t i = 1; i + 1 < raw.size(); ++i) {
        char c = raw[i];
        if (c == '\\' && i + 2 < raw.size()) {
            char next = raw[++i];
            switch (next) {
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              default:
                err = std::string("unknown escape '\\") + next + "'";
                return false;
            }
            continue;
        }
        out += c;
    }
    return true;
}

std::string
formatDouble(double value)
{
    char buf[64];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
    if (ec != std::errc())
        return std::to_string(value);
    return std::string(buf, ptr);
}

} // namespace polca::config
