/**
 * @file
 * Declarative scenario layer: one TOML-ish file describes a complete
 * experiment — deployment ([row], [row.server], [row.server.gpu]),
 * served model ([model]), policy ([policy] preset or explicit
 * [[policy.rules]]), control plane ([manager]), traffic
 * ([workload.diurnal], [[workload.mix]]), fault injection ([faults]
 * preset or explicit windows), and run parameters ([experiment]).
 *
 * Resolution order (later wins): struct defaults < scenario file <
 * `--set path=value` CLI overrides < sweep axis values.
 *
 * A [sweep] section declares axes as dotted config paths with a list
 * of values (`seed = [1..8]`, `"policy.preset" = ["polca", "1tlp"]`);
 * the file expands into the cartesian product of its axes, one
 * resolved ExperimentConfig per point, which core::SweepRunner
 * executes.  The reserved key `jobs` is not an axis: it sets how many
 * worker threads execute the points (`jobs = 4`; 0 = one per
 * hardware thread), overridable by the CLI's --jobs.
 *
 * dumpResolved() writes the fully-resolved effective configuration —
 * every bound field of every struct, with per-value provenance
 * comments — as a scenario file that reparses to the identical
 * resolved config (verified by test_scenario), so any run can be
 * reproduced byte-for-byte from its dumped artifact.
 */

#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "config/bindings.hh"
#include "config/config_node.hh"

namespace polca::config {

/** One expanded sweep point (or the single point of a plain file). */
struct ResolvedScenario
{
    /** "seed=1,policy.preset=polca" for sweep points, else "". */
    std::string label;

    /** Effective source tree: file + CLI overrides + sweep values
     *  (the [sweep] section itself removed).  Drives provenance in
     *  dumpResolved(). */
    ConfigNode tree;

    core::ExperimentConfig config;
};

/** A loaded scenario file, expanded over its sweep axes. */
struct ScenarioSet
{
    std::string name;  ///< file stem, for artifact naming
    std::vector<ResolvedScenario> points;

    /**
     * Requested sweep parallelism (the reserved `jobs` key of the
     * [sweep] section, which is not an axis): worker threads for
     * core::SweepRunner.  1 = sequential; `jobs = 0` in the file
     * means "one per hardware thread" and is resolved at load time.
     * The CLI's --jobs flag overrides this.
     */
    int jobs = 1;

    /**
     * Checkpoint/branch execution (the reserved `branch` key of the
     * [sweep] section): when the points share a warmup prefix
     * (`warmup = "1h"` in [sweep], or experiment.warmup in the
     * file), the runner simulates the prefix once per distinct
     * prefix and forks every point — and every baseline — from the
     * in-memory snapshot.  `branch = false` forces every point to
     * simulate from t = 0.  The CLI's --branch flag overrides this.
     */
    bool branch = true;

    bool isSweep() const { return points.size() > 1; }
};

/**
 * Bind a parsed scenario tree into an ExperimentConfig.  Reports
 * line-precise errors (unknown sections/keys with suggestions, unit
 * mismatches, out-of-range values, incomplete list entries) to
 * @p diag; @return false when anything failed.
 */
bool bindExperiment(const ConfigNode &root,
                    core::ExperimentConfig &config,
                    Diagnostics &diag);

/**
 * Load scenario text: parse, apply `path=value` @p overrides (origin
 * "cli"), expand sweep axes, and bind every point.  On error the
 * returned set may be partial; check @p diag.
 */
ScenarioSet loadScenarioString(const std::string &text,
                               const std::string &name,
                               const std::vector<std::string> &overrides,
                               Diagnostics &diag);

/** Load a scenario file from disk. */
ScenarioSet loadScenarioFile(const std::string &path,
                             const std::vector<std::string> &overrides,
                             Diagnostics &diag);

/**
 * Dump the fully-resolved effective configuration of @p config as a
 * reparseable scenario file with per-value provenance comments.
 * @p source is the effective source tree the config was bound from
 * (ResolvedScenario::tree); pass an empty section for pure-default
 * configs.
 */
void dumpResolved(const core::ExperimentConfig &config,
                  const ConfigNode &source, std::ostream &os);

/**
 * Equality over everything the scenario layer binds (scalars of all
 * bound structs, policy rules, workload mix, fault plan, and the
 * effective model spec).  The basis of the dump -> reparse identity
 * guarantee.
 */
bool resolvedConfigsEqual(const core::ExperimentConfig &a,
                          const core::ExperimentConfig &b);

/**
 * Digest of a point's *warmup prefix*: fnv1a64Hex over the resolved
 * dump (dumpResolved) with every control-plane section filtered out
 * — [policy*], [manager], [safety], [faults*], [chaos] — plus the
 * [experiment] keys that only steer the control plane or post-run
 * reporting (`managed`, `record_row_series`).  Two points with equal
 * digests share a bit-identical physical trajectory up to
 * t = warmup, because the control plane does not exist before the
 * boundary in a warmup run: that is the grouping key for
 * checkpoint/branch sweep execution (core::SweepPoint::warmupKey).
 */
std::string warmupDigest(const core::ExperimentConfig &config,
                         const ConfigNode &source);

/** The model a row will serve: the override when set, else the
 *  catalog entry named by RowConfig::modelName. */
llm::ModelSpec effectiveModelSpec(const cluster::RowConfig &row);

} // namespace polca::config

