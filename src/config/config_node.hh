/**
 * @file
 * The typed configuration tree every scenario file parses into.
 *
 * A ConfigNode is one of three kinds:
 *  - Section: an ordered map of key -> child node ([row], [policy]);
 *  - Scalar:  a raw value token ("40", "2s", "30%", "\"polca\"");
 *  - List:    an ordered sequence of nodes ([1, 2, 3], [[policy.rules]]
 *             blocks, sweep axis values).
 *
 * Every node carries a SourceLoc (file:line) for line-precise error
 * reporting and an `origin` provenance string ("default", "file:line",
 * "cli", "sweep") so the fully-resolved effective configuration can be
 * dumped with per-value provenance and rerun byte-reproducibly.
 *
 * The file format is a TOML subset: `[section]` headers (dotted paths
 * nest), `[[section.list]]` array-of-tables headers, `key = value`
 * pairs, `#` comments, quoted strings, single-line lists with
 * `lo..hi` integer ranges (`seed = [1..8]`).  Keys are literal — a
 * dotted key like `policy.preset` inside `[sweep]` stays one key,
 * which is exactly what sweep axes need.
 */

#pragma once

#include <string>
#include <utility>
#include <vector>

namespace polca::config {

/** Where a node came from, for error messages. */
struct SourceLoc
{
    std::string file;
    int line = 0;

    /** "file:line", or "<unknown>" when unset. */
    std::string str() const;
};

/** Collects parse/binding errors instead of aborting. */
class Diagnostics
{
  public:
    /** Record an error anchored at @p loc. */
    void error(const SourceLoc &loc, const std::string &msg);

    /** Record an error with no source anchor. */
    void error(const std::string &msg);

    bool ok() const { return errors_.empty(); }
    const std::vector<std::string> &errors() const { return errors_; }

    /** All errors joined with newlines. */
    std::string str() const;

  private:
    std::vector<std::string> errors_;
};

/** One node of the configuration tree. */
struct ConfigNode
{
    enum class Kind
    {
        Section,
        Scalar,
        List,
    };

    Kind kind = Kind::Section;
    SourceLoc loc;

    /** Provenance: "default", "<file>:<line>", "cli", "sweep", or a
     *  preset tag such as "preset:blackout". */
    std::string origin = "default";

    /** Scalar: the raw value token, quotes preserved for strings. */
    std::string raw;

    /** List elements. */
    std::vector<ConfigNode> items;

    /** Section entries, in declaration order. */
    std::vector<std::pair<std::string, ConfigNode>> entries;

    /** @name Section access */
    /** @{ */
    [[nodiscard]] bool has(const std::string &key) const;
    [[nodiscard]] const ConfigNode *find(const std::string &key) const;
    [[nodiscard]] ConfigNode *find(const std::string &key);

    /** Child node at a dotted path ("row.server.gpu"); null when any
     *  segment is missing or a non-section intervenes. */
    [[nodiscard]] const ConfigNode *findPath(const std::string &dotted) const;

    /** Get-or-create the Section child @p key (must not exist as a
     *  scalar/list). */
    ConfigNode &obtainSection(const std::string &key);

    /** Insert or replace entry @p key. */
    void set(const std::string &key, ConfigNode node);

    /**
     * Set a scalar at a dotted path, creating intermediate sections.
     * @return false (and reports to @p diag) when an intermediate
     * node exists but is not a section.
     */
    bool setPath(const std::string &dotted, ConfigNode scalar,
                 Diagnostics &diag);

    [[nodiscard]] std::vector<std::string> keys() const;
    /** @} */
};

/** Make a Scalar node. */
ConfigNode makeScalar(std::string raw, std::string origin,
                      SourceLoc loc = {});

/** Quote and escape a string for scalar storage / dumping. */
std::string quoteString(const std::string &value);

/**
 * Parse scenario-file text.  @p filename is used only for error
 * messages and provenance.  Returns the root section; on parse errors
 * the partial tree is returned and @p diag carries line-precise
 * messages.
 */
ConfigNode parseConfigString(const std::string &text,
                             const std::string &filename,
                             Diagnostics &diag);

/** Parse a scenario file from disk. */
ConfigNode parseConfigFile(const std::string &path, Diagnostics &diag);

/**
 * Nearest string to @p key among @p candidates by edit distance, for
 * "did you mean" suggestions; empty when nothing is close (distance
 * greater than half the key length, minimum 2).
 */
std::string nearestKey(const std::string &key,
                       const std::vector<std::string> &candidates);

} // namespace polca::config

