#include "config/scenario.hh"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <memory>
#include <sstream>
#include <type_traits>

#include "core/thread_pool.hh"
#include "core/workload_aware.hh"
#include "obs/manifest.hh"

namespace polca::config {

namespace {

/** Top-level sections a scenario file may contain. */
const std::vector<std::string> &
topLevelSections()
{
    static const std::vector<std::string> sections = {
        "experiment", "row",    "model",    "policy", "manager",
        "workload",   "faults", "chaos",    "safety", "obs",
        "sweep",      "topology",
    };
    return sections;
}

bool
requireKeys(const ConfigNode &section, const std::string &what,
            const std::vector<std::string> &keys, Diagnostics &diag)
{
    bool ok = true;
    for (const std::string &key : keys) {
        if (!section.has(key)) {
            diag.error(section.loc, what + ": missing required key '" +
                       key + "'");
            ok = false;
        }
    }
    return ok;
}

/** Read an optional scalar string field like `preset = "polca"`. */
bool
optionalString(const ConfigNode &section, const std::string &key,
               std::string &out, Diagnostics &diag)
{
    const ConfigNode *node = section.find(key);
    if (!node)
        return true;
    if (node->kind != ConfigNode::Kind::Scalar) {
        diag.error(node->loc, "'" + key + "' must be a string");
        return false;
    }
    std::string err;
    if (!parseStringToken(node->raw, out, err)) {
        diag.error(node->loc, key + ": " + err);
        return false;
    }
    return true;
}

bool
optionalNumber(const ConfigNode &section, const std::string &key,
               Unit unit, double &out, Diagnostics &diag)
{
    const ConfigNode *node = section.find(key);
    if (!node)
        return true;
    if (node->kind != ConfigNode::Kind::Scalar) {
        diag.error(node->loc, "'" + key + "' must be a number");
        return false;
    }
    std::string err;
    if (!parseNumberToken(node->raw, unit, out, err)) {
        diag.error(node->loc, key + ": " + err);
        return false;
    }
    return true;
}

bool
bindRow(const ConfigNode &rowSection, cluster::RowConfig &row,
        Diagnostics &diag)
{
    bool ok = rowConfigSchema().apply(rowSection, row, diag,
                                      {"server"});

    if (const ConfigNode *server = rowSection.find("server")) {
        if (server->kind != ConfigNode::Kind::Section) {
            diag.error(server->loc, "[row.server] must be a section");
            return false;
        }
        std::string preset;
        if (!optionalString(*server, "preset", preset, diag))
            ok = false;
        if (!preset.empty()) {
            if (preset == "DGX-A100-80GB") {
                row.serverSpec = power::ServerSpec::dgxA100_80gb();
            } else if (preset == "DGX-A100-40GB") {
                row.serverSpec = power::ServerSpec::dgxA100_40gb();
            } else if (preset == "DGX-H100") {
                row.serverSpec = power::ServerSpec::dgxH100();
            } else {
                diag.error(server->find("preset")->loc,
                           "unknown server preset '" + preset +
                           "' (use DGX-A100-80GB|DGX-A100-40GB|"
                           "DGX-H100)");
                ok = false;
            }
        }
        if (!serverSpecSchema().apply(*server, row.serverSpec, diag,
                                      {"preset", "gpu"}))
            ok = false;

        if (const ConfigNode *gpu = server->find("gpu")) {
            if (gpu->kind != ConfigNode::Kind::Section) {
                diag.error(gpu->loc,
                           "[row.server.gpu] must be a section");
                return false;
            }
            std::string gpuPreset;
            if (!optionalString(*gpu, "preset", gpuPreset, diag))
                ok = false;
            if (!gpuPreset.empty()) {
                if (gpuPreset == "A100-80GB" ||
                    gpuPreset == "A100-40GB" ||
                    gpuPreset == "H100-80GB") {
                    row.serverSpec.gpu =
                        power::GpuSpec::byName(gpuPreset);
                } else {
                    diag.error(gpu->find("preset")->loc,
                               "unknown GPU preset '" + gpuPreset +
                               "' (use A100-80GB|A100-40GB|"
                               "H100-80GB)");
                    ok = false;
                }
            }
            if (!gpuSpecSchema().apply(*gpu, row.serverSpec.gpu, diag,
                                       {"preset"}))
                ok = false;
        }
    }
    return ok;
}

bool
bindModel(const ConfigNode &root, cluster::RowConfig &row,
          Diagnostics &diag)
{
    llm::ModelCatalog catalog;
    const ConfigNode *model = root.find("model");
    if (!model) {
        if (!row.modelOverride && !catalog.contains(row.modelName)) {
            const ConfigNode *rowSection = root.find("row");
            diag.error(rowSection ? rowSection->loc : SourceLoc{},
                       "row.model: unknown model '" + row.modelName +
                       "' (not in the Table 3 catalog; add a [model] "
                       "section to define it)");
            return false;
        }
        return true;
    }
    if (model->kind != ConfigNode::Kind::Section) {
        diag.error(model->loc, "[model] must be a section");
        return false;
    }

    bool ok = true;
    std::string preset = catalog.contains(row.modelName)
        ? row.modelName : std::string();
    if (!optionalString(*model, "preset", preset, diag))
        ok = false;
    llm::ModelSpec spec;
    if (!preset.empty()) {
        if (!catalog.contains(preset)) {
            const ConfigNode *presetNode = model->find("preset");
            diag.error(presetNode ? presetNode->loc : model->loc,
                       "unknown model preset '" + preset + "'");
            return false;
        }
        spec = catalog.byName(preset);
    } else {
        // No catalog base: every field must be given explicitly.
        spec = llm::ModelSpec{};
        if (!requireKeys(*model, "[model] (no catalog preset)",
                         modelSpecSchema().keys(), diag))
            ok = false;
    }
    if (!modelSpecSchema().apply(*model, spec, diag, {"preset"}))
        ok = false;
    if (ok) {
        row.modelOverride = spec;
        row.modelName = spec.name;
    }
    return ok;
}

bool
bindPolicy(const ConfigNode &root, const cluster::RowConfig &row,
           core::PolicyConfig &policy, Diagnostics &diag)
{
    const ConfigNode *section = root.find("policy");
    if (!section)
        return true;  // keep the ExperimentConfig default (POLCA)
    if (section->kind != ConfigNode::Kind::Section) {
        diag.error(section->loc, "[policy] must be a section");
        return false;
    }

    bool ok = true;
    std::string preset = "polca";
    if (!optionalString(*section, "preset", preset, diag))
        ok = false;

    double t1 = 0.80, t2 = 0.89, t1LockMhz = 1275.0;
    double threshold = 0.89;
    bool hasPolcaParams = section->has("t1") || section->has("t2") ||
        section->has("t1_lock_mhz");
    bool hasThreshold = section->has("threshold");
    if (!optionalNumber(*section, "t1", Unit::Fraction, t1, diag))
        ok = false;
    if (!optionalNumber(*section, "t2", Unit::Fraction, t2, diag))
        ok = false;
    if (!optionalNumber(*section, "t1_lock_mhz", Unit::Megahertz,
                        t1LockMhz, diag))
        ok = false;
    if (!optionalNumber(*section, "threshold", Unit::Fraction,
                        threshold, diag))
        ok = false;

    if (preset == "polca") {
        policy = core::PolicyConfig::polca(t1, t2, t1LockMhz);
    } else if (preset == "1tlp") {
        policy = core::PolicyConfig::oneThreshLowPri(threshold);
    } else if (preset == "1tall") {
        policy = core::PolicyConfig::oneThreshAll(threshold);
    } else if (preset == "nocap") {
        policy = core::PolicyConfig::noCap();
    } else if (preset == "aware") {
        policy = core::workloadAwarePolicy(effectiveModelSpec(row));
    } else if (preset == "none") {
        policy = core::PolicyConfig{};
    } else {
        const ConfigNode *presetNode = section->find("preset");
        diag.error(presetNode ? presetNode->loc : section->loc,
                   "unknown policy preset '" + preset +
                   "' (use polca|1tlp|1tall|nocap|aware|none)");
        return false;
    }
    if (hasPolcaParams && preset != "polca") {
        diag.error(section->loc, "policy t1/t2/t1_lock_mhz only apply "
                   "to the polca preset (got '" + preset + "')");
        ok = false;
    }
    if (hasThreshold && preset != "1tlp" && preset != "1tall") {
        diag.error(section->loc, "policy threshold only applies to "
                   "the 1tlp/1tall presets (got '" + preset + "')");
        ok = false;
    }

    if (!policyConfigSchema().apply(
            *section, policy, diag,
            {"preset", "t1", "t2", "t1_lock_mhz", "threshold",
             "rules"}))
        ok = false;

    if (const ConfigNode *rules = section->find("rules")) {
        if (rules->kind != ConfigNode::Kind::List) {
            diag.error(rules->loc, "policy.rules must be a list of "
                       "[[policy.rules]] tables");
            return false;
        }
        policy.rules.clear();
        for (const ConfigNode &item : rules->items) {
            if (item.kind != ConfigNode::Kind::Section) {
                diag.error(item.loc, "[[policy.rules]] entries must "
                           "be tables");
                ok = false;
                continue;
            }
            core::ThresholdRule rule{};
            if (!requireKeys(item, "[[policy.rules]]",
                             thresholdRuleSchema().keys(), diag) ||
                !thresholdRuleSchema().apply(item, rule, diag)) {
                ok = false;
                continue;
            }
            if (rule.uncapFraction >= rule.capFraction) {
                diag.error(item.loc, "policy rule '" + rule.name +
                           "': uncap_at must sit below cap_at");
                ok = false;
            }
            policy.rules.push_back(rule);
        }
    }

    if (policy.powerBrakeReleaseFraction >=
        policy.powerBrakeFraction) {
        diag.error(section->loc, "policy: "
                   "power_brake_release_fraction must sit below "
                   "power_brake_fraction");
        ok = false;
    }
    return ok;
}

bool
bindWorkload(const ConfigNode &root, core::ExperimentConfig &config,
             Diagnostics &diag)
{
    const ConfigNode *section = root.find("workload");
    if (!section)
        return true;
    if (section->kind != ConfigNode::Kind::Section) {
        diag.error(section->loc, "[workload] must be a section");
        return false;
    }

    bool ok = true;
    for (const auto &[key, node] : section->entries) {
        if (key == "diurnal") {
            if (!diurnalSchema().apply(node, config.diurnal, diag))
                ok = false;
        } else if (key == "mix") {
            if (node.kind != ConfigNode::Kind::List) {
                diag.error(node.loc, "workload.mix must be a list of "
                           "[[workload.mix]] tables");
                ok = false;
                continue;
            }
            std::vector<workload::WorkloadSpec> mix;
            double totalTraffic = 0.0;
            for (const ConfigNode &item : node.items) {
                if (item.kind != ConfigNode::Kind::Section) {
                    diag.error(item.loc, "[[workload.mix]] entries "
                               "must be tables");
                    ok = false;
                    continue;
                }
                workload::WorkloadSpec spec{};
                if (!requireKeys(item, "[[workload.mix]]",
                                 workloadSpecSchema().keys(), diag) ||
                    !workloadSpecSchema().apply(item, spec, diag)) {
                    ok = false;
                    continue;
                }
                if (spec.promptMax < spec.promptMin ||
                    spec.outputMax < spec.outputMin) {
                    diag.error(item.loc, "workload '" + spec.name +
                               "': max token counts must be >= min");
                    ok = false;
                }
                totalTraffic += spec.trafficFraction;
                mix.push_back(spec);
            }
            if (ok && !mix.empty()) {
                if (std::abs(totalTraffic - 1.0) > 1e-3) {
                    diag.error(node.loc, "workload.mix traffic "
                               "fractions sum to " +
                               formatDouble(totalTraffic) +
                               ", expected 1");
                    ok = false;
                } else {
                    config.mix = std::move(mix);
                }
            }
        } else {
            std::string near =
                nearestKey(key, {"diurnal", "mix"});
            diag.error(node.loc, "unknown key '" + key +
                       "' in [workload]" +
                       (near.empty() ? ""
                                     : " (did you mean '" + near +
                                           "'?)"));
            ok = false;
        }
    }
    return ok;
}

bool
bindFaults(const ConfigNode &root, core::ExperimentConfig &config,
           Diagnostics &diag)
{
    const ConfigNode *section = root.find("faults");
    if (!section)
        return true;
    if (section->kind != ConfigNode::Kind::Section) {
        diag.error(section->loc, "[faults] must be a section");
        return false;
    }

    bool ok = true;
    std::string scenario;
    if (!optionalString(*section, "scenario", scenario, diag))
        ok = false;
    if (!scenario.empty()) {
        const std::vector<std::string> &names =
            faults::scenarioNames();
        if (std::find(names.begin(), names.end(), scenario) ==
            names.end()) {
            std::string near = nearestKey(scenario, names);
            diag.error(section->find("scenario")->loc,
                       "unknown fault scenario '" + scenario + "'" +
                       (near.empty() ? ""
                                     : " (did you mean '" + near +
                                           "'?)"));
            return false;
        }
        int deployed = static_cast<int>(std::lround(
            config.row.baseServers *
            (1.0 + config.row.addedServerFraction)));
        config.faultPlan = faults::scenarioByName(
            scenario, config.duration, deployed);
    }

    // Explicit windows/settings extend (or refine) the preset.
    for (const auto &[key, node] : section->entries) {
        if (key == "scenario")
            continue;
        if (key == "bursty_loss") {
            if (!burstyLossSchema().apply(
                    node, config.faultPlan.burstyLoss, diag))
                ok = false;
            continue;
        }
        // Per-entry degeneracy checks run at the entry's own source
        // line; cross-entry problems (overlaps) are reported against
        // the section after binding.
        auto bindList = [&](auto &plan, const auto &schema,
                            auto check) {
            if (node.kind != ConfigNode::Kind::List) {
                diag.error(node.loc, "faults." + key +
                           " must be a list of [[faults." + key +
                           "]] tables");
                ok = false;
                return;
            }
            for (const ConfigNode &item : node.items) {
                if (item.kind != ConfigNode::Kind::Section) {
                    diag.error(item.loc, "[[faults." + key +
                               "]] entries must be tables");
                    ok = false;
                    continue;
                }
                typename std::remove_reference_t<
                    decltype(plan)>::value_type entry{};
                if (!requireKeys(item, "[[faults." + key + "]]",
                                 schema.keys(), diag) ||
                    !schema.apply(item, entry, diag)) {
                    ok = false;
                    continue;
                }
                std::string problem = check(entry);
                if (!problem.empty()) {
                    diag.error(item.loc, "[[faults." + key + "]]: " +
                               problem);
                    ok = false;
                    continue;
                }
                plan.push_back(entry);
            }
        };
        auto windowCheck = [](const auto &entry) -> std::string {
            if (entry.duration <= 0)
                return "zero-length window (duration must be > 0)";
            return {};
        };
        if (key == "blackouts") {
            bindList(config.faultPlan.blackouts, blackoutSchema(),
                     windowCheck);
        } else if (key == "sensor_faults") {
            bindList(config.faultPlan.sensorFaults,
                     sensorFaultSchema(), windowCheck);
        } else if (key == "oob_outages") {
            bindList(config.faultPlan.oobOutages, oobOutageSchema(),
                     windowCheck);
        } else if (key == "crashes") {
            bindList(config.faultPlan.crashes, serverCrashSchema(),
                     [](const faults::ServerCrash &crash)
                         -> std::string {
                         if (crash.permanent && crash.downtime != 0)
                             return "a permanent crash must not set "
                                    "a downtime";
                         if (!crash.permanent && crash.downtime <= 0)
                             return "crash has no restart; set "
                                    "permanent = true to "
                                    "deliberately leave the server "
                                    "dark";
                         return {};
                     });
        } else if (key == "controller_crashes") {
            bindList(config.faultPlan.controllerCrashes,
                     controllerCrashSchema(),
                     [](const faults::ControllerCrash &crash)
                         -> std::string {
                         if (crash.downtime <= 0)
                             return "controller crash has no restart "
                                    "(downtime must be > 0)";
                         return {};
                     });
        } else {
            std::string near = nearestKey(
                key, {"scenario", "bursty_loss", "blackouts",
                      "sensor_faults", "oob_outages", "crashes",
                      "controller_crashes"});
            diag.error(node.loc, "unknown key '" + key +
                       "' in [faults]" +
                       (near.empty() ? ""
                                     : " (did you mean '" + near +
                                           "'?)"));
            ok = false;
        }
    }
    // Cross-entry problems (overlapping windows, crash-while-down)
    // span multiple source lines, so they anchor on the section.
    if (ok) {
        for (const std::string &problem :
             config.faultPlan.problems()) {
            diag.error(section->loc, "[faults]: " + problem);
            ok = false;
        }
    }
    return ok;
}

/** True when the group name is safe inside a dotted metric path. */
bool
validGroupName(const std::string &name)
{
    if (name.empty())
        return false;
    for (char c : name) {
        if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
              c == '_'))
            return false;
    }
    return true;
}

bool
bindTopology(const ConfigNode &root, core::ExperimentConfig &config,
             Diagnostics &diag)
{
    const ConfigNode *section = root.find("topology");
    if (!section)
        return true;
    if (section->kind != ConfigNode::Kind::Section) {
        diag.error(section->loc, "[topology] must be a section");
        return false;
    }

    bool ok = topologyConfigSchema().apply(*section, config.topology,
                                           diag, {"rows"});

    if (const ConfigNode *rows = section->find("rows")) {
        if (rows->kind != ConfigNode::Kind::List) {
            diag.error(rows->loc, "topology.rows must be a list of "
                       "[[topology.rows]] tables");
            return false;
        }
        llm::ModelCatalog catalog;
        config.topology.groups.clear();
        for (const ConfigNode &item : rows->items) {
            if (item.kind != ConfigNode::Kind::Section) {
                diag.error(item.loc, "[[topology.rows]] entries must "
                           "be tables");
                ok = false;
                continue;
            }
            cluster::TopologyRowGroup group{};
            if (!topologyRowGroupSchema().apply(item, group, diag)) {
                ok = false;
                continue;
            }
            if (!validGroupName(group.name)) {
                diag.error(item.loc, "[[topology.rows]] name '" +
                           group.name + "' must be lowercase "
                           "[a-z0-9_] (it becomes a metric-path "
                           "segment)");
                ok = false;
            }
            if (group.server != "DGX-A100-80GB" &&
                group.server != "DGX-A100-40GB" &&
                group.server != "DGX-H100") {
                diag.error(item.loc, "[[topology.rows]] '" +
                           group.name + "': unknown server preset '" +
                           group.server + "' (use DGX-A100-80GB|"
                           "DGX-A100-40GB|DGX-H100)");
                ok = false;
            }
            if (!catalog.contains(group.model)) {
                diag.error(item.loc, "[[topology.rows]] '" +
                           group.name + "': unknown model '" +
                           group.model + "' (not in the Table 3 "
                           "catalog)");
                ok = false;
            }
            for (const cluster::TopologyRowGroup &other :
                 config.topology.groups) {
                if (other.name == group.name) {
                    diag.error(item.loc, "[[topology.rows]] "
                               "duplicate group name '" + group.name +
                               "'");
                    ok = false;
                }
            }
            config.topology.groups.push_back(group);
        }
    }

    if (config.topology.enabled) {
        if (config.topology.groups.empty()) {
            diag.error(section->loc, "[topology]: enabled without "
                       "any [[topology.rows]] groups");
            ok = false;
        }
        // Site mode runs many serving cells; the single-row fault
        // and chaos machinery does not apply to it (yet).  Reject
        // *armed* plans rather than section presence so a resolved
        // dump (which always emits [chaos]) still reparses.
        const faults::FaultPlan &plan = config.faultPlan;
        bool hasFaults = plan.burstyLoss.enabled ||
            !plan.blackouts.empty() || !plan.sensorFaults.empty() ||
            !plan.oobOutages.empty() || !plan.crashes.empty() ||
            !plan.controllerCrashes.empty();
        if (hasFaults) {
            diag.error(section->loc, "[topology]: site mode does not "
                       "support fault injection ([faults])");
            ok = false;
        }
        if (config.chaos.enabled) {
            diag.error(section->loc, "[topology]: site mode does not "
                       "support chaos generation ([chaos])");
            ok = false;
        }
    }
    return ok;
}

} // namespace

llm::ModelSpec
effectiveModelSpec(const cluster::RowConfig &row)
{
    if (row.modelOverride)
        return *row.modelOverride;
    return llm::ModelCatalog().byName(row.modelName);
}

bool
bindExperiment(const ConfigNode &root, core::ExperimentConfig &config,
               Diagnostics &diag)
{
    if (root.kind != ConfigNode::Kind::Section) {
        diag.error(root.loc, "scenario root must be a section");
        return false;
    }

    bool ok = true;
    for (const auto &[key, node] : root.entries) {
        const std::vector<std::string> &known = topLevelSections();
        if (std::find(known.begin(), known.end(), key) ==
            known.end()) {
            std::string near = nearestKey(key, known);
            diag.error(node.loc, "unknown top-level " +
                       std::string(node.kind ==
                                           ConfigNode::Kind::Section
                                       ? "section ["
                                       : "entry [") + key + "]" +
                       (near.empty() ? ""
                                     : " (did you mean '" + near +
                                           "'?)"));
            ok = false;
        }
    }

    if (const ConfigNode *experiment = root.find("experiment")) {
        if (!experimentSchema().apply(*experiment, config, diag))
            ok = false;
    }
    if (const ConfigNode *row = root.find("row")) {
        if (!bindRow(*row, config.row, diag))
            ok = false;
    }
    if (!bindModel(root, config.row, diag))
        ok = false;
    if (!bindPolicy(root, config.row, config.policy, diag))
        ok = false;
    if (const ConfigNode *manager = root.find("manager")) {
        if (!managerOptionsSchema().apply(*manager, config.manager,
                                          diag))
            ok = false;
    }
    if (!bindWorkload(root, config, diag))
        ok = false;
    if (!bindFaults(root, config, diag))
        ok = false;
    if (const ConfigNode *chaos = root.find("chaos")) {
        if (!chaosConfigSchema().apply(*chaos, config.chaos, diag)) {
            ok = false;
        } else {
            // Range sanity the per-field bounds cannot express.
            auto checkRange = [&](const char *what, sim::Tick min,
                                  sim::Tick max) {
                if (min > max) {
                    diag.error(chaos->loc,
                               std::string("[chaos]: ") + what +
                               " duration range is inverted "
                               "(min > max)");
                    ok = false;
                }
            };
            const faults::ChaosConfig &c = config.chaos;
            checkRange("blackout", c.blackoutDurationMin,
                       c.blackoutDurationMax);
            checkRange("sensor-fault", c.sensorFaultDurationMin,
                       c.sensorFaultDurationMax);
            checkRange("oob-outage", c.oobOutageDurationMin,
                       c.oobOutageDurationMax);
            checkRange("crash-downtime", c.crashDowntimeMin,
                       c.crashDowntimeMax);
            checkRange("controller-downtime",
                       c.controllerDowntimeMin,
                       c.controllerDowntimeMax);
        }
    }
    if (const ConfigNode *safety = root.find("safety")) {
        if (!safetyOptionsSchema().apply(*safety, config.safety,
                                         diag))
            ok = false;
    }
    if (const ConfigNode *obsSection = root.find("obs")) {
        if (!obsOptionsSchema().apply(*obsSection, config.obsOptions,
                                      diag))
            ok = false;
    }
    // After [faults]/[chaos]: site mode rejects armed plans.
    if (!bindTopology(root, config, diag))
        ok = false;
    return ok;
}

namespace {

/** Pretty value of a scalar for sweep labels (strings unquoted). */
std::string
labelValue(const ConfigNode &scalar)
{
    std::string out, err;
    if (!scalar.raw.empty() && scalar.raw.front() == '"' &&
        parseStringToken(scalar.raw, out, err))
        return out;
    return scalar.raw;
}

struct SweepAxis
{
    std::string path;
    std::vector<ConfigNode> values;
};

/** Parse the reserved [sweep] `jobs` key: a non-negative integer
 *  scalar (0 = one worker per hardware thread). */
void
parseSweepJobs(const ConfigNode &node, int &jobs, Diagnostics &diag)
{
    if (node.kind != ConfigNode::Kind::Scalar) {
        diag.error(node.loc,
                   "[sweep] jobs must be a single integer "
                   "(it selects parallelism, it is not an axis)");
        return;
    }
    const std::string &raw = node.raw;
    int value = 0;
    auto [ptr, ec] = std::from_chars(raw.data(),
                                     raw.data() + raw.size(), value);
    if (ec != std::errc() || ptr != raw.data() + raw.size() ||
        value < 0) {
        diag.error(node.loc, "[sweep] jobs: expected a non-negative "
                   "integer, got '" + raw + "'");
        return;
    }
    jobs = value == 0
        ? static_cast<int>(core::ThreadPool::defaultWorkerCount())
        : value;
}

/** Parse the reserved [sweep] `branch` key: a boolean scalar. */
void
parseSweepBranch(const ConfigNode &node, bool &branch,
                 Diagnostics &diag)
{
    if (node.kind == ConfigNode::Kind::Scalar &&
        (node.raw == "true" || node.raw == "false")) {
        branch = node.raw == "true";
        return;
    }
    diag.error(node.loc,
               "[sweep] branch must be true or false "
               "(it selects checkpoint/branch execution, it is "
               "not an axis)");
}

std::vector<SweepAxis>
extractSweepAxes(ConfigNode &root, int &jobs, bool &branch,
                 Diagnostics &diag)
{
    std::vector<SweepAxis> axes;
    ConfigNode *sweep = root.find("sweep");
    if (!sweep)
        return axes;
    if (sweep->kind != ConfigNode::Kind::Section) {
        diag.error(sweep->loc, "[sweep] must be a section");
        return axes;
    }
    // Reserved `warmup` key, applied to experiment.warmup after the
    // [sweep] section is removed below.
    std::unique_ptr<ConfigNode> warmup;
    for (auto &[path, node] : sweep->entries) {
        if (path == "jobs") {
            parseSweepJobs(node, jobs, diag);
            continue;
        }
        if (path == "branch") {
            parseSweepBranch(node, branch, diag);
            continue;
        }
        if (path == "warmup") {
            if (node.kind != ConfigNode::Kind::Scalar) {
                diag.error(node.loc,
                           "[sweep] warmup must be a single "
                           "duration (it sets the shared prefix "
                           "every point branches from, it is not "
                           "an axis; sweep experiment.warmup to "
                           "vary it)");
                continue;
            }
            warmup = std::make_unique<ConfigNode>(node);
            continue;
        }
        SweepAxis axis;
        axis.path = path;
        if (node.kind == ConfigNode::Kind::Scalar) {
            axis.values.push_back(node);
        } else if (node.kind == ConfigNode::Kind::List) {
            if (node.items.empty()) {
                diag.error(node.loc, "sweep axis '" + path +
                           "' has no values");
                continue;
            }
            for (const ConfigNode &item : node.items) {
                if (item.kind != ConfigNode::Kind::Scalar) {
                    diag.error(item.loc, "sweep axis '" + path +
                               "' values must be scalars");
                    continue;
                }
                axis.values.push_back(item);
            }
        } else {
            diag.error(node.loc, "sweep axis '" + path +
                       "' must be a scalar or a list");
            continue;
        }
        axes.push_back(std::move(axis));
    }

    // Remove [sweep] so point trees bind cleanly.
    root.entries.erase(
        std::remove_if(root.entries.begin(), root.entries.end(),
                       [](const auto &e) {
                           return e.first == "sweep";
                       }),
        root.entries.end());

    if (warmup) {
        ConfigNode scalar = *warmup;
        scalar.origin = "sweep";
        root.setPath("experiment.warmup", std::move(scalar), diag);
    }
    return axes;
}

/** Overrides + sweep expansion + binding, shared by both loaders. */
ScenarioSet
expandAndBind(ConfigNode root, const std::string &name,
              const std::vector<std::string> &overrides,
              Diagnostics &diag)
{
    ScenarioSet set;
    set.name = name;

    for (const std::string &override_ : overrides) {
        std::size_t eq = override_.find('=');
        if (eq == std::string::npos || eq == 0) {
            diag.error("--set '" + override_ +
                       "': expected path=value");
            continue;
        }
        std::string path = override_.substr(0, eq);
        std::string value = override_.substr(eq + 1);
        if (value.empty()) {
            diag.error("--set " + path + ": empty value");
            continue;
        }
        ConfigNode scalar = makeScalar(value, "cli");
        scalar.loc.file = "--set " + override_;
        root.setPath(path, std::move(scalar), diag);
    }
    if (!diag.ok())
        return set;

    std::vector<SweepAxis> axes =
        extractSweepAxes(root, set.jobs, set.branch, diag);
    if (!diag.ok())
        return set;

    std::size_t total = 1;
    for (const SweepAxis &axis : axes) {
        total *= axis.values.size();
        if (total > 4096) {
            diag.error("sweep expands to more than 4096 points");
            return set;
        }
    }

    for (std::size_t index = 0; index < total; ++index) {
        ResolvedScenario point;
        point.tree = root;
        std::size_t remainder = index;
        for (const SweepAxis &axis : axes) {
            const ConfigNode &value =
                axis.values[remainder % axis.values.size()];
            remainder /= axis.values.size();
            ConfigNode scalar = value;
            scalar.origin = "sweep";
            point.tree.setPath(axis.path, std::move(scalar), diag);
            point.label += (point.label.empty() ? "" : ",") +
                axis.path + "=" + labelValue(value);
        }
        if (!diag.ok())
            return set;
        if (!bindExperiment(point.tree, point.config, diag))
            return set;
        set.points.push_back(std::move(point));
    }
    return set;
}

} // namespace

ScenarioSet
loadScenarioString(const std::string &text, const std::string &name,
                   const std::vector<std::string> &overrides,
                   Diagnostics &diag)
{
    ConfigNode root = parseConfigString(text, name, diag);
    if (!diag.ok()) {
        ScenarioSet set;
        set.name = name;
        return set;
    }
    return expandAndBind(std::move(root), name, overrides, diag);
}

ScenarioSet
loadScenarioFile(const std::string &path,
                 const std::vector<std::string> &overrides,
                 Diagnostics &diag)
{
    std::string stem = path;
    std::size_t slash = stem.find_last_of('/');
    if (slash != std::string::npos)
        stem = stem.substr(slash + 1);
    std::size_t dot = stem.find_last_of('.');
    if (dot != std::string::npos && dot > 0)
        stem = stem.substr(0, dot);

    ConfigNode root = parseConfigFile(path, diag);
    if (!diag.ok()) {
        ScenarioSet set;
        set.name = stem;
        return set;
    }
    return expandAndBind(std::move(root), stem, overrides, diag);
}

namespace {

/** Section header + schema dump with provenance from the source
 *  tree. */
template <typename T>
void
dumpSection(std::ostream &os, const std::string &header, const T &obj,
            const StructSchema<T> &schema, const ConfigNode &source,
            const std::string &sourcePath,
            const std::string &fallbackOrigin = "default")
{
    os << "[" << header << "]\n";
    const ConfigNode *section = source.findPath(sourcePath);
    schema.dump(obj, section, os, fallbackOrigin);
    os << "\n";
}

/** Array-of-tables dump: one [[header]] block per element. */
template <typename T>
void
dumpBlocks(std::ostream &os, const std::string &header,
           const std::vector<T> &items, const StructSchema<T> &schema,
           const ConfigNode &source, const std::string &sourcePath,
           const std::string &fallbackOrigin)
{
    const ConfigNode *list = source.findPath(sourcePath);
    for (std::size_t i = 0; i < items.size(); ++i) {
        const ConfigNode *element = nullptr;
        if (list && list->kind == ConfigNode::Kind::List &&
            i < list->items.size() &&
            list->items[i].kind == ConfigNode::Kind::Section)
            element = &list->items[i];
        os << "[[" << header << "]]\n";
        schema.dump(items[i], element, os, fallbackOrigin);
        os << "\n";
    }
}

} // namespace

void
dumpResolved(const core::ExperimentConfig &config,
             const ConfigNode &source, std::ostream &os)
{
    os << "# polcasim effective configuration (fully resolved: "
          "defaults + file + CLI + sweep)\n"
          "# Provenance per value: default | <file>:<line> | cli | "
          "sweep | preset:<name>\n"
          "# Rerun with: polcactl run --scenario-file <this file>\n"
          "\n";

    dumpSection(os, "experiment", config, experimentSchema(), source,
                "experiment");
    dumpSection(os, "row", config.row, rowConfigSchema(), source,
                "row");
    dumpSection(os, "row.server", config.row.serverSpec,
                serverSpecSchema(), source, "row.server",
                "preset:" + config.row.serverSpec.name);
    dumpSection(os, "row.server.gpu", config.row.serverSpec.gpu,
                gpuSpecSchema(), source, "row.server.gpu",
                "preset:" + config.row.serverSpec.gpu.name);

    llm::ModelSpec model = effectiveModelSpec(config.row);
    dumpSection(os, "model", model, modelSpecSchema(), source,
                "model", "catalog:" + model.name);

    // Policy: dump preset "none" plus the explicit resolved rules so
    // reparsing rebuilds the exact rule set with no preset involved.
    os << "[policy]\n";
    os << "preset = \"none\"  # resolved\n";
    {
        const ConfigNode *section = source.findPath("policy");
        std::string fallback = "preset";
        if (section) {
            if (const ConfigNode *preset = section->find("preset"))
                fallback = "preset (" + preset->origin + ")";
        }
        policyConfigSchema().dump(config.policy, section, os,
                                  section ? fallback : "default");
    }
    os << "\n";
    dumpBlocks(os, "policy.rules", config.policy.rules,
               thresholdRuleSchema(), source, "policy.rules",
               "preset:" + config.policy.name);

    dumpSection(os, "manager", config.manager,
                managerOptionsSchema(), source, "manager");
    dumpSection(os, "workload.diurnal", config.diurnal,
                diurnalSchema(), source, "workload.diurnal");
    dumpBlocks(os, "workload.mix", config.mix, workloadSpecSchema(),
               source, "workload.mix", "default");

    const faults::FaultPlan &plan = config.faultPlan;
    std::string faultFallback = "default";
    if (const ConfigNode *faultsSection = source.findPath("faults")) {
        if (const ConfigNode *scenario =
                faultsSection->find("scenario")) {
            std::string name, err;
            if (parseStringToken(scenario->raw, name, err))
                faultFallback = "preset:" + name;
        }
    }
    dumpSection(os, "faults.bursty_loss", plan.burstyLoss,
                burstyLossSchema(), source, "faults.bursty_loss",
                faultFallback);
    dumpBlocks(os, "faults.blackouts", plan.blackouts,
               blackoutSchema(), source, "faults.blackouts",
               faultFallback);
    dumpBlocks(os, "faults.sensor_faults", plan.sensorFaults,
               sensorFaultSchema(), source, "faults.sensor_faults",
               faultFallback);
    dumpBlocks(os, "faults.oob_outages", plan.oobOutages,
               oobOutageSchema(), source, "faults.oob_outages",
               faultFallback);
    dumpBlocks(os, "faults.crashes", plan.crashes,
               serverCrashSchema(), source, "faults.crashes",
               faultFallback);
    dumpBlocks(os, "faults.controller_crashes", plan.controllerCrashes,
               controllerCrashSchema(), source,
               "faults.controller_crashes", faultFallback);

    dumpSection(os, "chaos", config.chaos, chaosConfigSchema(),
                source, "chaos");
    dumpSection(os, "safety", config.safety, safetyOptionsSchema(),
                source, "safety");
    dumpSection(os, "obs", config.obsOptions, obsOptionsSchema(),
                source, "obs");
    dumpSection(os, "topology", config.topology,
                topologyConfigSchema(), source, "topology");
    dumpBlocks(os, "topology.rows", config.topology.groups,
               topologyRowGroupSchema(), source, "topology.rows",
               "default");
}

std::string
warmupDigest(const core::ExperimentConfig &config,
             const ConfigNode &source)
{
    std::ostringstream dump;
    dumpResolved(config, source, dump);

    // The control plane does not exist before t = warmup, so any
    // section that only configures it cannot influence the warmup
    // prefix and is dropped from the digest.  Everything else —
    // deployment, model, workload, [obs] cadence, topology, seed,
    // warmup itself — stays in.
    static const char *const controlSections[] = {
        "policy", "manager", "safety", "faults", "chaos"};

    std::istringstream in(dump.str());
    std::string filtered, line;
    filtered.reserve(dump.str().size());
    bool skip = false;
    bool inExperiment = false;
    while (std::getline(in, line)) {
        if (!line.empty() && line.front() == '[') {
            std::string name = line;
            while (!name.empty() && name.front() == '[')
                name.erase(name.begin());
            while (!name.empty() && name.back() == ']')
                name.pop_back();
            std::string head = name.substr(0, name.find('.'));
            skip = false;
            for (const char *section : controlSections)
                skip = skip || head == section;
            inExperiment = name == "experiment";
            if (skip)
                continue;
        } else if (skip) {
            continue;
        } else if (inExperiment &&
                   (line.rfind("managed ", 0) == 0 ||
                    line.rfind("record_row_series ", 0) == 0)) {
            // [experiment] knobs that only steer the control plane
            // or post-run reporting.
            continue;
        }
        filtered += line;
        filtered += '\n';
    }
    return obs::fnv1a64Hex(filtered);
}

bool
resolvedConfigsEqual(const core::ExperimentConfig &a,
                     const core::ExperimentConfig &b)
{
    if (!experimentSchema().equal(a, b))
        return false;
    if (!rowConfigSchema().equal(a.row, b.row))
        return false;
    if (!serverSpecSchema().equal(a.row.serverSpec, b.row.serverSpec))
        return false;
    if (!gpuSpecSchema().equal(a.row.serverSpec.gpu,
                               b.row.serverSpec.gpu))
        return false;
    if (!modelSpecSchema().equal(effectiveModelSpec(a.row),
                                 effectiveModelSpec(b.row)))
        return false;
    if (!policyConfigSchema().equal(a.policy, b.policy))
        return false;
    if (a.policy.rules.size() != b.policy.rules.size())
        return false;
    for (std::size_t i = 0; i < a.policy.rules.size(); ++i) {
        if (!thresholdRuleSchema().equal(a.policy.rules[i],
                                         b.policy.rules[i]))
            return false;
    }
    if (!managerOptionsSchema().equal(a.manager, b.manager))
        return false;
    if (!diurnalSchema().equal(a.diurnal, b.diurnal))
        return false;
    if (a.mix.size() != b.mix.size())
        return false;
    for (std::size_t i = 0; i < a.mix.size(); ++i) {
        if (!workloadSpecSchema().equal(a.mix[i], b.mix[i]))
            return false;
    }
    const faults::FaultPlan &fa = a.faultPlan;
    const faults::FaultPlan &fb = b.faultPlan;
    if (!burstyLossSchema().equal(fa.burstyLoss, fb.burstyLoss))
        return false;
    if (fa.blackouts.size() != fb.blackouts.size() ||
        fa.sensorFaults.size() != fb.sensorFaults.size() ||
        fa.oobOutages.size() != fb.oobOutages.size() ||
        fa.crashes.size() != fb.crashes.size())
        return false;
    for (std::size_t i = 0; i < fa.blackouts.size(); ++i) {
        if (!blackoutSchema().equal(fa.blackouts[i], fb.blackouts[i]))
            return false;
    }
    for (std::size_t i = 0; i < fa.sensorFaults.size(); ++i) {
        if (!sensorFaultSchema().equal(fa.sensorFaults[i],
                                       fb.sensorFaults[i]))
            return false;
    }
    for (std::size_t i = 0; i < fa.oobOutages.size(); ++i) {
        if (!oobOutageSchema().equal(fa.oobOutages[i],
                                     fb.oobOutages[i]))
            return false;
    }
    for (std::size_t i = 0; i < fa.crashes.size(); ++i) {
        if (!serverCrashSchema().equal(fa.crashes[i], fb.crashes[i]))
            return false;
    }
    if (fa.controllerCrashes.size() != fb.controllerCrashes.size())
        return false;
    for (std::size_t i = 0; i < fa.controllerCrashes.size(); ++i) {
        if (!controllerCrashSchema().equal(fa.controllerCrashes[i],
                                           fb.controllerCrashes[i]))
            return false;
    }
    if (!chaosConfigSchema().equal(a.chaos, b.chaos))
        return false;
    if (!safetyOptionsSchema().equal(a.safety, b.safety))
        return false;
    if (!obsOptionsSchema().equal(a.obsOptions, b.obsOptions))
        return false;
    if (!topologyConfigSchema().equal(a.topology, b.topology))
        return false;
    if (a.topology.groups.size() != b.topology.groups.size())
        return false;
    for (std::size_t i = 0; i < a.topology.groups.size(); ++i) {
        if (!topologyRowGroupSchema().equal(a.topology.groups[i],
                                            b.topology.groups[i]))
            return false;
    }
    return true;
}

} // namespace polca::config
