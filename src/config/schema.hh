/**
 * @file
 * Schema bindings between ConfigNode trees and the simulator's config
 * structs.
 *
 * A StructSchema<T> declares, for one struct, the scalar fields the
 * scenario layer can reach: key name, member pointer, unit, and
 * validation range.  The same declaration is used in both directions:
 *
 *  - apply():  parse a section's scalars into a struct instance with
 *              line-precise range/unit/unknown-key errors;
 *  - dump():   emit every bound field of a resolved struct as
 *              `key = value  # provenance` lines whose values reparse
 *              to the identical struct (canonical, unit-free numbers
 *              formatted with shortest-round-trip precision);
 *  - equal():  field-wise equality, for round-trip tests.
 *
 * Scalar tokens accept optional unit suffixes checked against the
 * field's declared unit: fractions take `%` (30% -> 0.30), durations
 * take ms/s/min/h/d, powers take W/kW/MW, frequencies take MHz/GHz.
 * Bare numbers are read in the field's canonical unit.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "config/config_node.hh"
#include "sim/types.hh"

namespace polca::config {

/** Canonical unit of a numeric field. */
enum class Unit
{
    None,       ///< dimensionless number
    Fraction,   ///< 0.30 or 30%
    Seconds,    ///< 2, 2s, 500ms, 3min, 1.5h, 2d
    Watts,      ///< 250, 250W, 6.5kW
    Megahertz,  ///< 1275, 1275MHz, 1.41GHz
};

/** @name Raw-token parsing (shared by schema fields and the CLI) */
/** @{ */

/** Parse a numeric token with optional unit suffix into the
 *  canonical unit; returns false with a message on malformed input,
 *  unknown suffixes, or a suffix that contradicts @p unit. */
bool parseNumberToken(const std::string &raw, Unit unit, double &out,
                      std::string &err);

/** Strict integer parse (no units, no trailing garbage). */
bool parseIntToken(const std::string &raw, long long &out,
                   std::string &err);

/** "true"/"false" (also accepts 1/0). */
bool parseBoolToken(const std::string &raw, bool &out,
                    std::string &err);

/** Unquote a string token; bare unquoted tokens are accepted too. */
bool parseStringToken(const std::string &raw, std::string &out,
                      std::string &err);

/** Shortest-round-trip decimal formatting of a double. */
std::string formatDouble(double value);

/** @} */

/** One struct's scenario-reachable fields. */
template <typename T>
class StructSchema
{
  public:
    explicit StructSchema(std::string structName)
        : name_(std::move(structName))
    {}

    /** Bind a double field with range [min, max] in canonical
     *  units. */
    StructSchema &
    field(const std::string &key, double T::*member, Unit unit,
          double min, double max)
    {
        Field f;
        f.key = key;
        f.parse = [this, key, member, unit, min,
                   max](T &obj, const ConfigNode &scalar,
                        Diagnostics &diag) {
            double value = 0.0;
            std::string err;
            if (!parseNumberToken(scalar.raw, unit, value, err)) {
                diag.error(scalar.loc, name_ + "." + key + ": " + err);
                return false;
            }
            if (value < min || value > max) {
                diag.error(scalar.loc, name_ + "." + key + " = " +
                           formatDouble(value) + " out of range [" +
                           formatDouble(min) + ", " +
                           formatDouble(max) + "]");
                return false;
            }
            obj.*member = value;
            return true;
        };
        f.format = [member](const T &obj) {
            return formatDouble(obj.*member);
        };
        fields_.push_back(std::move(f));
        return *this;
    }

    /** Bind an integer-like field (int, size_t, uint32/64). */
    template <typename Int>
    StructSchema &
    intField(const std::string &key, Int T::*member, long long min,
             long long max)
    {
        Field f;
        f.key = key;
        f.parse = [this, key, member, min,
                   max](T &obj, const ConfigNode &scalar,
                        Diagnostics &diag) {
            long long value = 0;
            std::string err;
            if (!parseIntToken(scalar.raw, value, err)) {
                diag.error(scalar.loc, name_ + "." + key + ": " + err);
                return false;
            }
            if (value < min || value > max) {
                diag.error(scalar.loc, name_ + "." + key + " = " +
                           std::to_string(value) + " out of range [" +
                           std::to_string(min) + ", " +
                           std::to_string(max) + "]");
                return false;
            }
            obj.*member = static_cast<Int>(value);
            return true;
        };
        f.format = [member](const T &obj) {
            return std::to_string(
                static_cast<long long>(obj.*member));
        };
        fields_.push_back(std::move(f));
        return *this;
    }

    /** Bind a sim::Tick field; scenario values are durations
     *  (seconds by default, unit suffixes accepted), range given in
     *  seconds. */
    StructSchema &
    tickField(const std::string &key, sim::Tick T::*member,
              double minSeconds, double maxSeconds)
    {
        Field f;
        f.key = key;
        f.parse = [this, key, member, minSeconds,
                   maxSeconds](T &obj, const ConfigNode &scalar,
                               Diagnostics &diag) {
            double seconds = 0.0;
            std::string err;
            if (!parseNumberToken(scalar.raw, Unit::Seconds, seconds,
                                  err)) {
                diag.error(scalar.loc, name_ + "." + key + ": " + err);
                return false;
            }
            if (seconds < minSeconds || seconds > maxSeconds) {
                diag.error(scalar.loc, name_ + "." + key + " = " +
                           formatDouble(seconds) +
                           "s out of range [" +
                           formatDouble(minSeconds) + "s, " +
                           formatDouble(maxSeconds) + "s]");
                return false;
            }
            obj.*member = sim::secondsToTicks(seconds);
            return true;
        };
        f.format = [member](const T &obj) {
            return formatDouble(sim::ticksToSeconds(obj.*member));
        };
        fields_.push_back(std::move(f));
        return *this;
    }

    StructSchema &
    boolField(const std::string &key, bool T::*member)
    {
        Field f;
        f.key = key;
        f.parse = [this, key, member](T &obj,
                                      const ConfigNode &scalar,
                                      Diagnostics &diag) {
            bool value = false;
            std::string err;
            if (!parseBoolToken(scalar.raw, value, err)) {
                diag.error(scalar.loc, name_ + "." + key + ": " + err);
                return false;
            }
            obj.*member = value;
            return true;
        };
        f.format = [member](const T &obj) {
            return obj.*member ? "true" : "false";
        };
        fields_.push_back(std::move(f));
        return *this;
    }

    StructSchema &
    stringField(const std::string &key, std::string T::*member)
    {
        Field f;
        f.key = key;
        f.parse = [this, key, member](T &obj,
                                      const ConfigNode &scalar,
                                      Diagnostics &diag) {
            std::string value;
            std::string err;
            if (!parseStringToken(scalar.raw, value, err)) {
                diag.error(scalar.loc, name_ + "." + key + ": " + err);
                return false;
            }
            obj.*member = value;
            return true;
        };
        f.format = [member](const T &obj) {
            return quoteString(obj.*member);
        };
        fields_.push_back(std::move(f));
        return *this;
    }

    /** Bind an enum field by name list. */
    template <typename E>
    StructSchema &
    enumField(const std::string &key, E T::*member,
              std::vector<std::pair<std::string, E>> names)
    {
        Field f;
        f.key = key;
        f.parse = [this, key, member,
                   names](T &obj, const ConfigNode &scalar,
                          Diagnostics &diag) {
            std::string value;
            std::string err;
            if (!parseStringToken(scalar.raw, value, err)) {
                diag.error(scalar.loc, name_ + "." + key + ": " + err);
                return false;
            }
            for (const auto &[n, e] : names) {
                if (n == value) {
                    obj.*member = e;
                    return true;
                }
            }
            std::string known;
            for (const auto &[n, e] : names)
                known += (known.empty() ? "" : "|") + n;
            diag.error(scalar.loc, name_ + "." + key + ": unknown "
                       "value '" + value + "' (use " + known + ")");
            return false;
        };
        f.format = [member, names](const T &obj) {
            for (const auto &[n, e] : names) {
                if (e == obj.*member)
                    return quoteString(n);
            }
            return quoteString("?");
        };
        fields_.push_back(std::move(f));
        return *this;
    }

    /**
     * Apply a section's scalar entries onto @p obj.  Keys in
     * @p extraAllowed are skipped (they are consumed by the caller:
     * presets, nested sections).  Unknown keys error with a nearest-
     * key suggestion.  @return false when any entry failed.
     */
    bool
    apply(const ConfigNode &section, T &obj, Diagnostics &diag,
          const std::set<std::string> &extraAllowed = {}) const
    {
        bool ok = true;
        for (const auto &[key, node] : section.entries) {
            if (extraAllowed.count(key))
                continue;
            const Field *f = findField(key);
            if (!f) {
                std::vector<std::string> known = keys();
                known.insert(known.end(), extraAllowed.begin(),
                             extraAllowed.end());
                std::string near = nearestKey(key, known);
                diag.error(node.loc, "unknown key '" + key +
                           "' in [" + name_ + "]" +
                           (near.empty() ? ""
                                         : " (did you mean '" + near +
                                               "'?)"));
                ok = false;
                continue;
            }
            if (node.kind != ConfigNode::Kind::Scalar) {
                diag.error(node.loc, name_ + "." + key +
                           ": expected a scalar value");
                ok = false;
                continue;
            }
            if (!f->parse(obj, node, diag))
                ok = false;
        }
        return ok;
    }

    /**
     * Emit `key = value  # provenance` lines for every bound field.
     * Provenance is the matching scalar's origin in @p source (the
     * effective source section for this struct), @p fallbackOrigin
     * for fields without a source entry.
     */
    void
    dump(const T &obj, const ConfigNode *source, std::ostream &os,
         const std::string &fallbackOrigin = "default") const
    {
        for (const Field &f : fields_) {
            std::string origin = fallbackOrigin;
            if (source) {
                if (const ConfigNode *node = source->find(f.key)) {
                    if (node->kind == ConfigNode::Kind::Scalar)
                        origin = node->origin;
                }
            }
            os << f.key << " = " << f.format(obj) << "  # " << origin
               << "\n";
        }
    }

    /** Field-wise equality via canonical formatting. */
    bool
    equal(const T &a, const T &b) const
    {
        for (const Field &f : fields_) {
            if (f.format(a) != f.format(b))
                return false;
        }
        return true;
    }

    /** Canonically-formatted value of one field (tests). */
    std::string
    formatValue(const T &obj, const std::string &key) const
    {
        const Field *f = findField(key);
        return f ? f->format(obj) : std::string("<no such field>");
    }

    std::vector<std::string>
    keys() const
    {
        std::vector<std::string> out;
        out.reserve(fields_.size());
        for (const Field &f : fields_)
            out.push_back(f.key);
        return out;
    }

    const std::string &name() const { return name_; }

  private:
    struct Field
    {
        std::string key;
        std::function<bool(T &, const ConfigNode &, Diagnostics &)>
            parse;
        std::function<std::string(const T &)> format;
    };

    const Field *
    findField(const std::string &key) const
    {
        for (const Field &f : fields_) {
            if (f.key == key)
                return &f;
        }
        return nullptr;
    }

    std::string name_;
    std::vector<Field> fields_;
};

} // namespace polca::config

