/**
 * @file
 * Schema bindings for every configuration struct the simulator owns.
 *
 * One StructSchema per struct, each declaring the scenario-reachable
 * fields with units, defaults (the default-constructed struct), and
 * validation ranges.  The scenario layer (config/scenario.hh) stitches
 * these together into the full [experiment]/[row]/[policy]/... tree;
 * tests use them directly for defaults -> dump -> reparse round
 * trips.
 */

#pragma once

#include "cluster/row.hh"
#include "cluster/topology.hh"
#include "config/schema.hh"
#include "core/oversub_experiment.hh"
#include "core/policy.hh"
#include "core/power_manager.hh"
#include "core/safety_monitor.hh"
#include "faults/chaos.hh"
#include "faults/fault_plan.hh"
#include "llm/model_spec.hh"
#include "power/gpu_spec.hh"
#include "power/server_model.hh"
#include "workload/diurnal.hh"
#include "workload/workload_spec.hh"

namespace polca::config {

const StructSchema<power::GpuSpec> &gpuSpecSchema();
const StructSchema<power::ServerSpec> &serverSpecSchema();
const StructSchema<llm::ModelSpec> &modelSpecSchema();
const StructSchema<workload::WorkloadSpec> &workloadSpecSchema();
const StructSchema<workload::DiurnalModel::Params> &diurnalSchema();
const StructSchema<cluster::RowConfig> &rowConfigSchema();
const StructSchema<cluster::TopologyConfig> &topologyConfigSchema();
const StructSchema<cluster::TopologyRowGroup> &topologyRowGroupSchema();
const StructSchema<core::ThresholdRule> &thresholdRuleSchema();
const StructSchema<core::PolicyConfig> &policyConfigSchema();
const StructSchema<core::ManagerOptions> &managerOptionsSchema();
const StructSchema<core::ExperimentConfig> &experimentSchema();

const StructSchema<faults::BlackoutWindow> &blackoutSchema();
const StructSchema<faults::BurstyLoss> &burstyLossSchema();
const StructSchema<faults::SensorFault> &sensorFaultSchema();
const StructSchema<faults::OobOutage> &oobOutageSchema();
const StructSchema<faults::ServerCrash> &serverCrashSchema();
const StructSchema<faults::ControllerCrash> &controllerCrashSchema();
const StructSchema<faults::ChaosConfig> &chaosConfigSchema();
const StructSchema<core::SafetyOptions> &safetyOptionsSchema();
const StructSchema<core::ObsOptions> &obsOptionsSchema();

} // namespace polca::config

