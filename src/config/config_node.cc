#include "config/config_node.hh"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

#include "core/contracts.hh"

namespace polca::config {

std::string
SourceLoc::str() const
{
    if (file.empty())
        return "<unknown>";
    if (line == 0)
        return file;  // synthetic sources ("--set x=y") have no line
    return file + ":" + std::to_string(line);
}

void
Diagnostics::error(const SourceLoc &loc, const std::string &msg)
{
    errors_.push_back(loc.str() + ": " + msg);
}

void
Diagnostics::error(const std::string &msg)
{
    errors_.push_back(msg);
}

std::string
Diagnostics::str() const
{
    std::string out;
    for (const std::string &e : errors_) {
        if (!out.empty())
            out += '\n';
        out += e;
    }
    return out;
}

bool
ConfigNode::has(const std::string &key) const
{
    return find(key) != nullptr;
}

const ConfigNode *
ConfigNode::find(const std::string &key) const
{
    for (const auto &[k, v] : entries) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

ConfigNode *
ConfigNode::find(const std::string &key)
{
    for (auto &[k, v] : entries) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const ConfigNode *
ConfigNode::findPath(const std::string &dotted) const
{
    const ConfigNode *node = this;
    std::size_t pos = 0;
    while (pos <= dotted.size()) {
        std::size_t dot = dotted.find('.', pos);
        std::string segment = dotted.substr(
            pos, dot == std::string::npos ? std::string::npos
                                          : dot - pos);
        if (node->kind != Kind::Section)
            return nullptr;
        node = node->find(segment);
        if (!node)
            return nullptr;
        if (dot == std::string::npos)
            return node;
        pos = dot + 1;
    }
    return nullptr;
}

ConfigNode &
ConfigNode::obtainSection(const std::string &key)
{
    if (ConfigNode *existing = find(key)) {
        POLCA_CHECK(existing->kind == Kind::Section,
                    "obtainSection('", key,
                    "') found a non-section node (from ",
                    existing->loc.str(), ")");
        return *existing;
    }
    ConfigNode section;
    section.kind = Kind::Section;
    entries.emplace_back(key, std::move(section));
    return entries.back().second;
}

void
ConfigNode::set(const std::string &key, ConfigNode node)
{
    // Tree-shape contract: each kind uses exactly its own payload
    // field, so a malformed node cannot enter the tree and surface
    // later as a confusing parse/bind error.
    POLCA_DCHECK(node.kind != Kind::Scalar ||
                     (node.items.empty() && node.entries.empty()),
                 "scalar node '", key, "' carries children");
    POLCA_DCHECK(node.kind != Kind::Section || node.raw.empty(),
                 "section node '", key, "' carries a raw value");
    POLCA_DCHECK(node.kind != Kind::List || node.entries.empty(),
                 "list node '", key, "' carries section entries");
    if (ConfigNode *existing = find(key)) {
        *existing = std::move(node);
        return;
    }
    entries.emplace_back(key, std::move(node));
}

bool
ConfigNode::setPath(const std::string &dotted, ConfigNode scalar,
                    Diagnostics &diag)
{
    ConfigNode *node = this;
    std::size_t pos = 0;
    while (true) {
        std::size_t dot = dotted.find('.', pos);
        if (dot == std::string::npos) {
            std::string key = dotted.substr(pos);
            if (key.empty()) {
                diag.error(scalar.loc,
                           "empty path segment in '" + dotted + "'");
                return false;
            }
            ConfigNode *existing = node->find(key);
            if (existing && existing->kind == Kind::Section) {
                diag.error(scalar.loc, "'" + dotted +
                           "' names a section, not a value");
                return false;
            }
            node->set(key, std::move(scalar));
            return true;
        }
        std::string segment = dotted.substr(pos, dot - pos);
        if (segment.empty()) {
            diag.error(scalar.loc,
                       "empty path segment in '" + dotted + "'");
            return false;
        }
        ConfigNode *child = node->find(segment);
        if (child && child->kind != Kind::Section) {
            diag.error(scalar.loc, "'" + dotted + "': segment '" +
                       segment + "' is not a section");
            return false;
        }
        node = &node->obtainSection(segment);
        pos = dot + 1;
    }
}

std::vector<std::string>
ConfigNode::keys() const
{
    std::vector<std::string> out;
    out.reserve(entries.size());
    for (const auto &[k, v] : entries)
        out.push_back(k);
    return out;
}

ConfigNode
makeScalar(std::string raw, std::string origin, SourceLoc loc)
{
    ConfigNode node;
    node.kind = ConfigNode::Kind::Scalar;
    node.raw = std::move(raw);
    node.origin = std::move(origin);
    node.loc = std::move(loc);
    return node;
}

std::string
quoteString(const std::string &value)
{
    std::string out = "\"";
    for (char c : value) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
    }
    out += '"';
    return out;
}

namespace {

std::string
trim(const std::string &s)
{
    std::size_t begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    std::size_t end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

/** Strip an unquoted '#' comment from a line. */
std::string
stripComment(const std::string &line)
{
    bool inString = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (c == '\\' && inString) {
            ++i;
            continue;
        }
        if (c == '"')
            inString = !inString;
        else if (c == '#' && !inString)
            return line.substr(0, i);
    }
    return line;
}

bool
isIntegerToken(const std::string &s)
{
    if (s.empty())
        return false;
    std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
    if (i == s.size())
        return false;
    for (; i < s.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(s[i])))
            return false;
    }
    return true;
}

/** Split a single-line list body on top-level commas. */
std::vector<std::string>
splitListBody(const std::string &body)
{
    std::vector<std::string> parts;
    std::string current;
    bool inString = false;
    for (std::size_t i = 0; i < body.size(); ++i) {
        char c = body[i];
        if (c == '\\' && inString && i + 1 < body.size()) {
            current += c;
            current += body[++i];
            continue;
        }
        if (c == '"')
            inString = !inString;
        if (c == ',' && !inString) {
            parts.push_back(current);
            current.clear();
            continue;
        }
        current += c;
    }
    parts.push_back(current);
    return parts;
}

struct Parser
{
    std::string filename;
    Diagnostics &diag;

    SourceLoc
    at(int line) const
    {
        return SourceLoc{filename, line};
    }

    std::string
    originAt(int line) const
    {
        return filename + ":" + std::to_string(line);
    }

    /** Parse one value token (scalar, quoted string, or list). */
    bool
    parseValue(const std::string &text, int line, ConfigNode &out)
    {
        std::string value = trim(text);
        if (value.empty()) {
            diag.error(at(line), "missing value");
            return false;
        }

        if (value.front() == '[') {
            if (value.back() != ']') {
                diag.error(at(line), "unterminated list '" + value +
                           "' (lists are single-line)");
                return false;
            }
            ConfigNode list;
            list.kind = ConfigNode::Kind::List;
            list.loc = at(line);
            list.origin = originAt(line);
            std::string body =
                trim(value.substr(1, value.size() - 2));
            if (body.empty()) {
                out = std::move(list);
                return true;
            }
            for (const std::string &part : splitListBody(body)) {
                std::string element = trim(part);
                if (element.empty()) {
                    diag.error(at(line), "empty list element");
                    return false;
                }
                // lo..hi inclusive integer range.
                std::size_t dots = element.find("..");
                if (dots != std::string::npos &&
                    element.front() != '"') {
                    std::string lo = trim(element.substr(0, dots));
                    std::string hi = trim(element.substr(dots + 2));
                    if (!isIntegerToken(lo) || !isIntegerToken(hi)) {
                        diag.error(at(line), "bad range '" + element +
                                   "' (expected <int>..<int>)");
                        return false;
                    }
                    long long a = std::stoll(lo), b = std::stoll(hi);
                    if (b < a || b - a > 100000) {
                        diag.error(at(line), "range '" + element +
                                   "' is empty or too large");
                        return false;
                    }
                    for (long long v = a; v <= b; ++v) {
                        list.items.push_back(makeScalar(
                            std::to_string(v), originAt(line),
                            at(line)));
                    }
                    continue;
                }
                ConfigNode elementNode;
                if (!parseValue(element, line, elementNode))
                    return false;
                if (elementNode.kind == ConfigNode::Kind::List) {
                    diag.error(at(line), "nested lists are not "
                               "supported");
                    return false;
                }
                list.items.push_back(std::move(elementNode));
            }
            out = std::move(list);
            return true;
        }

        if (value.front() == '"') {
            // Validate the quoted string and keep it raw.
            bool closed = false;
            for (std::size_t i = 1; i < value.size(); ++i) {
                if (value[i] == '\\') {
                    ++i;
                    continue;
                }
                if (value[i] == '"') {
                    closed = i == value.size() - 1;
                    break;
                }
            }
            if (!closed) {
                diag.error(at(line), "unterminated or malformed "
                           "string " + value);
                return false;
            }
            out = makeScalar(value, originAt(line), at(line));
            return true;
        }

        out = makeScalar(value, originAt(line), at(line));
        return true;
    }

    ConfigNode
    parse(std::istream &in)
    {
        ConfigNode root;
        root.kind = ConfigNode::Kind::Section;
        root.loc = at(0);

        ConfigNode *current = &root;
        std::string currentHeader;
        std::vector<std::string> seenHeaders;

        std::string rawLine;
        int lineNo = 0;
        while (std::getline(in, rawLine)) {
            ++lineNo;
            std::string line = trim(stripComment(rawLine));
            if (line.empty())
                continue;

            if (line.front() == '[') {
                bool isArray = line.rfind("[[", 0) == 0;
                std::string close = isArray ? "]]" : "]";
                if (line.size() < close.size() + 2 ||
                    line.compare(line.size() - close.size(),
                                 close.size(), close) != 0) {
                    diag.error(at(lineNo), "malformed section header '"
                               + line + "'");
                    continue;
                }
                std::string path = trim(line.substr(
                    isArray ? 2 : 1,
                    line.size() - 2 * (isArray ? 2 : 1)));
                if (path.empty()) {
                    diag.error(at(lineNo), "empty section header");
                    continue;
                }

                // Walk/create the dotted path.
                ConfigNode *node = &root;
                bool bad = false;
                std::size_t pos = 0;
                std::string walked;
                while (!bad) {
                    std::size_t dot = path.find('.', pos);
                    std::string segment = path.substr(
                        pos, dot == std::string::npos
                                 ? std::string::npos
                                 : dot - pos);
                    if (segment.empty()) {
                        diag.error(at(lineNo),
                                   "empty segment in section header '"
                                   + path + "'");
                        bad = true;
                        break;
                    }
                    walked += (walked.empty() ? "" : ".") + segment;
                    bool last = dot == std::string::npos;
                    ConfigNode *child = node->find(segment);
                    if (last && isArray) {
                        if (child &&
                            child->kind != ConfigNode::Kind::List) {
                            diag.error(at(lineNo), "'" + walked +
                                       "' already defined as a "
                                       "non-list at " +
                                       child->loc.str());
                            bad = true;
                            break;
                        }
                        if (!child) {
                            ConfigNode list;
                            list.kind = ConfigNode::Kind::List;
                            list.loc = at(lineNo);
                            list.origin = originAt(lineNo);
                            node->set(segment, std::move(list));
                            child = node->find(segment);
                        }
                        ConfigNode element;
                        element.kind = ConfigNode::Kind::Section;
                        element.loc = at(lineNo);
                        element.origin = originAt(lineNo);
                        child->items.push_back(std::move(element));
                        node = &child->items.back();
                        break;
                    }
                    if (child &&
                        child->kind != ConfigNode::Kind::Section) {
                        diag.error(at(lineNo), "'" + walked +
                                   "' already defined as a value at " +
                                   child->loc.str());
                        bad = true;
                        break;
                    }
                    if (!child) {
                        ConfigNode section;
                        section.kind = ConfigNode::Kind::Section;
                        section.loc = at(lineNo);
                        section.origin = originAt(lineNo);
                        node->set(segment, std::move(section));
                        child = node->find(segment);
                    }
                    node = child;
                    if (last)
                        break;
                    pos = dot + 1;
                }
                if (bad)
                    continue;

                if (!isArray) {
                    if (std::find(seenHeaders.begin(),
                                  seenHeaders.end(), path) !=
                        seenHeaders.end()) {
                        diag.error(at(lineNo), "duplicate section [" +
                                   path + "]");
                        continue;
                    }
                    seenHeaders.push_back(path);
                }
                current = node;
                currentHeader = path;
                continue;
            }

            std::size_t eq = line.find('=');
            if (eq == std::string::npos) {
                diag.error(at(lineNo), "expected 'key = value', got '" +
                           line + "'");
                continue;
            }
            std::string key = trim(line.substr(0, eq));
            if (!key.empty() && key.front() == '"' &&
                key.back() == '"' && key.size() >= 2) {
                key = key.substr(1, key.size() - 2);
            }
            if (key.empty()) {
                diag.error(at(lineNo), "missing key before '='");
                continue;
            }
            if (const ConfigNode *existing = current->find(key)) {
                diag.error(at(lineNo), "duplicate key '" + key +
                           "' (first defined at " +
                           existing->loc.str() + ")");
                continue;
            }
            ConfigNode value;
            if (!parseValue(line.substr(eq + 1), lineNo, value))
                continue;
            current->set(key, std::move(value));
        }
        return root;
    }
};

} // namespace

ConfigNode
parseConfigString(const std::string &text, const std::string &filename,
                  Diagnostics &diag)
{
    std::istringstream in(text);
    Parser parser{filename, diag};
    return parser.parse(in);
}

ConfigNode
parseConfigFile(const std::string &path, Diagnostics &diag)
{
    std::ifstream in(path);
    if (!in) {
        diag.error("cannot open scenario file '" + path + "'");
        ConfigNode empty;
        empty.kind = ConfigNode::Kind::Section;
        return empty;
    }
    Parser parser{path, diag};
    return parser.parse(in);
}

std::string
nearestKey(const std::string &key,
           const std::vector<std::string> &candidates)
{
    // Classic Levenshtein distance; inputs are short flag/key names.
    auto distance = [](const std::string &a, const std::string &b) {
        std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
        for (std::size_t j = 0; j <= b.size(); ++j)
            prev[j] = j;
        for (std::size_t i = 1; i <= a.size(); ++i) {
            cur[0] = i;
            for (std::size_t j = 1; j <= b.size(); ++j) {
                std::size_t sub =
                    prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
                cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
            }
            std::swap(prev, cur);
        }
        return prev[b.size()];
    };

    std::string best;
    std::size_t bestDistance = std::max<std::size_t>(
        2, key.size() / 2);
    for (const std::string &candidate : candidates) {
        std::size_t d = distance(key, candidate);
        if (d <= bestDistance && d > 0) {
            bestDistance = d;
            best = candidate;
        } else if (d == 0) {
            return candidate;
        }
    }
    return best;
}

} // namespace polca::config
