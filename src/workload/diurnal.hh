/**
 * @file
 * Diurnal load model: interactive inference traffic follows a daily
 * cycle with a weekend dip and short-term noise (Table 4: inference
 * power is "diurnal with short-term variations").  This is the hidden
 * "production" arrival-rate model from which synthetic traces are
 * generated per Section 6.4's methodology.
 */

#pragma once

#include "sim/random.hh"
#include "sim/types.hh"

namespace polca::workload {

/**
 * Utilization-over-time model.  utilizationAt() must be called with
 * non-decreasing times because the short-term noise is an AR(1)
 * process advanced along the query sequence.
 */
class DiurnalModel
{
  public:
    struct Params
    {
        /** Mean busy fraction of the cluster. */
        double baseUtilization = 0.72;

        /** Peak-to-mean amplitude of the daily sinusoid. */
        double dailyAmplitude = 0.10;

        /** Utilization reduction on Saturday/Sunday. */
        double weekendDip = 0.08;

        /** Stddev of the AR(1) short-term noise. */
        double noiseAmplitude = 0.03;

        /** Correlation time of the noise, seconds. */
        double noiseCorrSeconds = 600.0;

        /** Time of the daily peak, seconds after midnight. */
        double peakSecondsOfDay = 14.0 * 3600.0;

        /** Floor/ceiling. */
        double minUtilization = 0.10;
        double maxUtilization = 1.00;
    };

    DiurnalModel(Params params, sim::Rng rng);

    /** Busy-fraction at @p time (call with non-decreasing times). */
    double utilizationAt(sim::Tick time);

    /** Deterministic component only (no noise); const. */
    double deterministicAt(sim::Tick time) const;

    const Params &params() const { return params_; }

  private:
    Params params_;
    sim::Rng rng_;
    double noiseState_ = 0.0;
    sim::Tick lastTime_ = 0;
    bool first_ = true;
};

} // namespace polca::workload

