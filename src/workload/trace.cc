#include "workload/trace.hh"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "sim/logging.hh"

namespace polca::workload {

void
Trace::add(const Request &request)
{
    if (!requests_.empty() && request.arrival < requests_.back().arrival) {
        sim::panic("Trace::add: arrival ", request.arrival,
                   " precedes previous arrival ",
                   requests_.back().arrival);
    }
    requests_.push_back(request);
    if (request.arrival > duration_)
        duration_ = request.arrival;
}

double
Trace::meanArrivalRate() const
{
    if (duration_ <= 0)
        return 0.0;
    return static_cast<double>(requests_.size()) /
        sim::ticksToSeconds(duration_);
}

std::vector<std::uint64_t>
Trace::binnedArrivals(sim::Tick binWidth) const
{
    if (binWidth <= 0)
        sim::panic("Trace::binnedArrivals: non-positive bin width");
    std::size_t bins =
        static_cast<std::size_t>((duration_ + binWidth - 1) / binWidth);
    std::vector<std::uint64_t> counts(bins == 0 ? 1 : bins, 0);
    for (const auto &request : requests_) {
        auto bin = static_cast<std::size_t>(request.arrival / binWidth);
        if (bin >= counts.size())
            bin = counts.size() - 1;
        ++counts[bin];
    }
    return counts;
}

Trace
Trace::slice(sim::Tick start, sim::Tick end) const
{
    if (end <= start)
        sim::panic("Trace::slice: empty interval");
    Trace out(end - start);
    for (const auto &request : requests_) {
        if (request.arrival < start || request.arrival >= end)
            continue;
        Request shifted = request;
        shifted.arrival -= start;
        out.add(shifted);
    }
    out.setDuration(end - start);
    return out;
}

double
Trace::highPriorityFraction() const
{
    if (requests_.empty())
        return 0.0;
    std::size_t high = 0;
    for (const auto &request : requests_) {
        if (request.priority == Priority::High)
            ++high;
    }
    return static_cast<double>(high) /
        static_cast<double>(requests_.size());
}

void
Trace::save(std::ostream &os) const
{
    os << "arrival_us,id,workload,priority,input_tokens,output_tokens\n";
    os << "#duration_us=" << duration_ << "\n";
    for (const auto &r : requests_) {
        os << r.arrival << ',' << r.id << ',' << r.workloadIndex << ','
           << (r.priority == Priority::High ? 'H' : 'L') << ','
           << r.inputTokens << ',' << r.outputTokens << '\n';
    }
}

Trace
Trace::load(std::istream &is)
{
    Trace trace;
    std::string line;
    bool first = true;
    std::size_t lineNumber = 0;
    while (std::getline(is, line)) {
        ++lineNumber;
        if (line.empty())
            continue;
        if (first) {
            first = false;  // header
            continue;
        }
        try {
            if (line.rfind("#duration_us=", 0) == 0) {
                trace.setDuration(std::stoll(line.substr(13)));
                continue;
            }
            std::istringstream ss(line);
            std::string field;
            Request r;
            auto next = [&](const char *what) {
                if (!std::getline(ss, field, ','))
                    throw std::invalid_argument(what);
                return field;
            };
            r.arrival = std::stoll(next("arrival"));
            r.id = std::stoull(next("id"));
            r.workloadIndex =
                static_cast<std::uint32_t>(std::stoul(next("workload")));
            r.priority = (next("priority") == "H") ? Priority::High
                                                   : Priority::Low;
            r.inputTokens = std::stoi(next("input"));
            r.outputTokens = std::stoi(next("output"));
            trace.add(r);
        } catch (const std::exception &e) {
            sim::fatal("Trace::load: malformed line ", lineNumber,
                       " ('", line.substr(0, 60), "'): ", e.what());
        }
    }
    return trace;
}

} // namespace polca::workload
