#include "workload/trace_gen.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace polca::workload {

TraceGenerator::TraceGenerator(std::vector<WorkloadSpec> mix)
    : mix_(std::move(mix))
{
    if (mix_.empty())
        sim::fatal("TraceGenerator: empty workload mix");
    double total = 0.0;
    for (const auto &w : mix_)
        total += w.trafficFraction;
    if (std::abs(total - 1.0) > 1e-6)
        sim::fatal("TraceGenerator: traffic fractions sum to ", total);
}

Request
TraceGenerator::sampleRequest(sim::Rng &rng, sim::Tick arrival,
                              std::uint64_t id) const
{
    std::vector<double> weights;
    weights.reserve(mix_.size());
    for (const auto &w : mix_)
        weights.push_back(w.trafficFraction);
    std::size_t index = rng.weightedIndex(weights);
    const WorkloadSpec &w = mix_[index];

    Request request;
    request.arrival = arrival;
    request.id = id;
    request.workloadIndex = static_cast<std::uint32_t>(index);
    request.priority = rng.bernoulli(w.highPriorityFraction)
        ? Priority::High : Priority::Low;
    request.inputTokens = static_cast<std::int32_t>(
        rng.uniformInt(w.promptMin, w.promptMax));
    request.outputTokens = static_cast<std::int32_t>(
        rng.uniformInt(w.outputMin, w.outputMax));
    return request;
}

Trace
TraceGenerator::generate(const TraceGenOptions &options) const
{
    if (options.duration <= 0 || options.numServers <= 0 ||
        options.serviceSecondsPerRequest <= 0.0) {
        sim::fatal("TraceGenerator::generate: invalid options");
    }

    sim::Rng rng(options.seed);
    sim::Rng sizeRng = rng.fork(1);
    DiurnalModel diurnal(options.diurnal, rng.fork(2));

    Trace trace(options.duration);
    std::uint64_t id = 0;
    const sim::Tick bin = sim::secondsToTicks(1.0);

    for (sim::Tick t = 0; t < options.duration; t += bin) {
        double utilization = diurnal.utilizationAt(t);
        double rate = utilization * options.numServers /
            options.serviceSecondsPerRequest;  // requests/second

        std::poisson_distribution<int> poisson(rate);
        int arrivals = poisson(rng.engine());
        if (arrivals <= 0)
            continue;

        // Place arrivals uniformly within the bin, sorted.
        std::vector<sim::Tick> offsets;
        offsets.reserve(static_cast<std::size_t>(arrivals));
        for (int i = 0; i < arrivals; ++i)
            offsets.push_back(rng.uniformInt(0, bin - 1));
        std::sort(offsets.begin(), offsets.end());
        for (sim::Tick offset : offsets)
            trace.add(sampleRequest(sizeRng, t + offset, id++));
    }
    return trace;
}

Trace
TraceGenerator::regenerate(const Trace &reference, sim::Tick binWidth,
                           std::uint64_t seed) const
{
    if (reference.empty())
        sim::fatal("TraceGenerator::regenerate: empty reference");

    sim::Rng rng(seed);
    sim::Rng sizeRng = rng.fork(1);

    std::vector<std::uint64_t> counts =
        reference.binnedArrivals(binWidth);
    Trace trace(reference.duration());
    std::uint64_t id = 0;

    for (std::size_t b = 0; b < counts.size(); ++b) {
        if (counts[b] == 0)
            continue;
        sim::Tick binStart = static_cast<sim::Tick>(b) * binWidth;
        sim::Tick binEnd =
            std::min(binStart + binWidth, reference.duration());
        std::vector<sim::Tick> offsets;
        offsets.reserve(counts[b]);
        for (std::uint64_t i = 0; i < counts[b]; ++i) {
            offsets.push_back(
                rng.uniformInt(binStart, std::max(binStart,
                                                  binEnd - 1)));
        }
        std::sort(offsets.begin(), offsets.end());
        for (sim::Tick arrival : offsets)
            trace.add(sampleRequest(sizeRng, arrival, id++));
    }
    trace.setDuration(reference.duration());
    return trace;
}

namespace {

double
meanServiceSeconds(const WorkloadSpec &w, const llm::PhaseModel &model)
{
    llm::InferenceConfig config;
    config.inputTokens = (w.promptMin + w.promptMax) / 2;
    config.outputTokens = (w.outputMin + w.outputMax) / 2;
    config.batchSize = 1;
    return sim::ticksToSeconds(model.totalLatency(config));
}

} // namespace

double
TraceGenerator::expectedServiceSeconds(
    const llm::PhaseModel &model) const
{
    double expected = 0.0;
    for (const auto &w : mix_)
        expected += w.trafficFraction * meanServiceSeconds(w, model);
    return expected;
}

double
TraceGenerator::lowPriorityWorkShare(const llm::PhaseModel &model) const
{
    double low = 0.0;
    double total = 0.0;
    for (const auto &w : mix_) {
        double work = w.trafficFraction * meanServiceSeconds(w, model);
        low += work * (1.0 - w.highPriorityFraction);
        total += work;
    }
    return total > 0.0 ? low / total : 0.5;
}

} // namespace polca::workload
