#include "workload/diurnal.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace polca::workload {

namespace {
constexpr double secondsPerDay = 24.0 * 3600.0;
constexpr double pi = 3.14159265358979323846;
} // namespace

DiurnalModel::DiurnalModel(Params params, sim::Rng rng)
    : params_(params), rng_(rng)
{
    if (params_.baseUtilization <= 0.0)
        sim::fatal("DiurnalModel: non-positive base utilization");
}

double
DiurnalModel::deterministicAt(sim::Tick time) const
{
    double seconds = sim::ticksToSeconds(time);
    double secondsOfDay = std::fmod(seconds, secondsPerDay);
    double phase = 2.0 * pi *
        (secondsOfDay - params_.peakSecondsOfDay) / secondsPerDay;
    double daily = params_.dailyAmplitude * std::cos(phase);

    // Day 0 is a Monday; days 5 and 6 are the weekend.
    auto day = static_cast<long>(seconds / secondsPerDay) % 7;
    double weekend = (day == 5 || day == 6) ? -params_.weekendDip : 0.0;

    double u = params_.baseUtilization + daily + weekend;
    return std::clamp(u, params_.minUtilization, params_.maxUtilization);
}

double
DiurnalModel::utilizationAt(sim::Tick time)
{
    if (!first_ && time < lastTime_) {
        sim::panic("DiurnalModel: time ", time,
                   " precedes last query ", lastTime_);
    }

    double dtSeconds =
        first_ ? 0.0 : sim::ticksToSeconds(time - lastTime_);
    first_ = false;
    lastTime_ = time;

    // AR(1) noise with the configured correlation time.
    double rho = std::exp(-dtSeconds / params_.noiseCorrSeconds);
    double innovation = params_.noiseAmplitude *
        std::sqrt(std::max(0.0, 1.0 - rho * rho));
    noiseState_ = rho * noiseState_ + rng_.normal(0.0, innovation);

    double u = deterministicAt(time) + noiseState_;
    return std::clamp(u, params_.minUtilization, params_.maxUtilization);
}

} // namespace polca::workload
