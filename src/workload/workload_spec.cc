#include "workload/workload_spec.hh"

namespace polca::workload {

const char *
toString(Priority priority)
{
    return priority == Priority::High ? "High" : "Low";
}

std::vector<WorkloadSpec>
paperWorkloadMix()
{
    return {
        {"Summarize", 2048, 8192, 256, 512, 0.25, 0.0},
        {"Search", 512, 2048, 1024, 2048, 0.25, 1.0},
        {"Chat", 2048, 4096, 128, 2048, 0.50, 0.5},
    };
}

SloSpec
paperSlos()
{
    return SloSpec{};
}

} // namespace polca::workload
