/**
 * @file
 * The inference workload mix and SLOs of the POLCA evaluation
 * (Table 6): Summarize / Search / Chat tasks over BLOOM-176B with
 * low/high priorities and latency SLOs per priority.
 */

#pragma once

#include <string>
#include <vector>

namespace polca::workload {

/** Workload priority tiers (pricing tiers / application classes). */
enum class Priority
{
    Low,
    High,
};

const char *toString(Priority priority);

/** One row of Table 6. */
struct WorkloadSpec
{
    std::string name;
    int promptMin;
    int promptMax;
    int outputMin;
    int outputMax;

    /** Fraction of overall traffic. */
    double trafficFraction;

    /** Fraction of this workload's requests that are high priority
     *  (Table 6: Summarize 0, Search 1, Chat 0.5). */
    double highPriorityFraction;
};

/** Table 6's workload distribution. */
std::vector<WorkloadSpec> paperWorkloadMix();

/** Latency/availability SLOs of Table 6 (multipliers on the
 *  unthrottled baseline). */
struct SloSpec
{
    double hpP50Limit = 1.01;   ///< high pri: < 1 % p50 impact
    double hpP99Limit = 1.05;   ///< high pri: < 5 % p99 impact
    double lpP50Limit = 1.05;   ///< low pri: < 5 % p50 impact
    double lpP99Limit = 1.50;   ///< low pri: < 50 % p99 impact
    int maxPowerBrakes = 0;     ///< zero power-brake events
};

/** The paper's SLO configuration. */
SloSpec paperSlos();

} // namespace polca::workload

