/**
 * @file
 * Request-level trace container with CSV persistence.  A trace is the
 * interface between the workload generators and the cluster
 * simulator, mirroring the paper's synthetic production trace
 * ("arrivals for each inference request along with their input and
 * output sizes", Section 6.4).
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/types.hh"
#include "workload/workload_spec.hh"

namespace polca::workload {

/** One inference request arrival. */
struct Request
{
    sim::Tick arrival = 0;
    std::uint64_t id = 0;
    std::uint32_t workloadIndex = 0;   ///< index into the mix
    Priority priority = Priority::Low;
    std::int32_t inputTokens = 0;
    std::int32_t outputTokens = 0;
};

/**
 * Time-ordered request sequence over a fixed horizon.
 */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(sim::Tick duration) : duration_(duration) {}

    /** Append a request; arrivals must be non-decreasing. */
    void add(const Request &request);

    const std::vector<Request> &requests() const { return requests_; }
    std::size_t size() const { return requests_.size(); }
    bool empty() const { return requests_.empty(); }

    sim::Tick duration() const { return duration_; }
    void setDuration(sim::Tick duration) { duration_ = duration; }

    /** Mean arrival rate over the horizon, requests/second. */
    double meanArrivalRate() const;

    /** Arrival counts per @p binWidth bin across the horizon. */
    std::vector<std::uint64_t> binnedArrivals(sim::Tick binWidth) const;

    /** Requests with arrival in [start, end); duration = end-start,
     *  arrivals rebased to 0. */
    Trace slice(sim::Tick start, sim::Tick end) const;

    /** Fraction of requests at high priority. */
    double highPriorityFraction() const;

    /** @name CSV persistence */
    /** @{ */
    void save(std::ostream &os) const;
    static Trace load(std::istream &is);
    /** @} */

  private:
    std::vector<Request> requests_;
    sim::Tick duration_ = 0;
};

} // namespace polca::workload

