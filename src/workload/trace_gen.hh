/**
 * @file
 * Trace generation (Section 6.4).
 *
 * The paper replays a six-week production power trace by generating a
 * synthetic request-level trace whose simulated power matches the
 * production series within 3 % MAPE.  We reproduce the methodology:
 * generate() plays the role of the (hidden) production workload —
 * a diurnal, noisy arrival process over the Table 6 mix — and
 * regenerate() rebuilds a synthetic trace from only the binned
 * arrival-rate of a reference trace, redrawing request sizes from the
 * workload mix.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "llm/phase_model.hh"
#include "workload/diurnal.hh"
#include "workload/trace.hh"
#include "workload/workload_spec.hh"

namespace polca::workload {

/** Options of TraceGenerator::generate(). */
struct TraceGenOptions
{
    /** Trace horizon (paper: six weeks). */
    sim::Tick duration = sim::secondsToTicks(7 * 24 * 3600.0);

    /** Servers whose traffic the trace represents; arrival rate
     *  scales linearly (more servers serve more requests). */
    int numServers = 40;

    /** Mean seconds one request occupies a server (sets the offered
     *  load: rate = utilization * servers / serviceSeconds). */
    double serviceSecondsPerRequest = 50.0;

    /** Diurnal utilization model parameters. */
    DiurnalModel::Params diurnal;

    std::uint64_t seed = 42;
};

/**
 * Generates request traces over a workload mix.
 */
class TraceGenerator
{
  public:
    explicit TraceGenerator(
        std::vector<WorkloadSpec> mix = paperWorkloadMix());

    const std::vector<WorkloadSpec> &mix() const { return mix_; }

    /** Draw workload class, priority, and sizes for one arrival. */
    Request sampleRequest(sim::Rng &rng, sim::Tick arrival,
                          std::uint64_t id) const;

    /**
     * Generate a "production" trace: non-homogeneous Poisson arrivals
     * whose rate follows the diurnal model.
     */
    Trace generate(const TraceGenOptions &options) const;

    /**
     * The paper's synthetic regeneration: keep only the binned
     * arrival counts of @p reference and redraw everything else from
     * the mix.  MAPE of the resulting power series vs. the reference
     * should be within ~3 % (validated in bench_trace_fidelity).
     */
    Trace regenerate(const Trace &reference, sim::Tick binWidth,
                     std::uint64_t seed) const;

    /**
     * Mean service seconds per request for @p model over this mix
     * (used to set offered load so servers run at the intended
     * utilization).
     */
    double expectedServiceSeconds(const llm::PhaseModel &model) const;

    /**
     * Fraction of total *work* (traffic-weighted service time) that
     * is low priority.  Pool sizing must follow work share, not
     * request share: Search requests run ~2x longer than Summarize
     * ones, so a 50:50 request split is not a 50:50 load split.
     */
    double lowPriorityWorkShare(const llm::PhaseModel &model) const;

  private:
    std::vector<WorkloadSpec> mix_;
};

} // namespace polca::workload

