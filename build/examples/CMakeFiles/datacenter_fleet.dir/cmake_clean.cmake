file(REMOVE_RECURSE
  "CMakeFiles/datacenter_fleet.dir/datacenter_fleet.cpp.o"
  "CMakeFiles/datacenter_fleet.dir/datacenter_fleet.cpp.o.d"
  "datacenter_fleet"
  "datacenter_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
