file(REMOVE_RECURSE
  "CMakeFiles/characterize_model.dir/characterize_model.cpp.o"
  "CMakeFiles/characterize_model.dir/characterize_model.cpp.o.d"
  "characterize_model"
  "characterize_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
