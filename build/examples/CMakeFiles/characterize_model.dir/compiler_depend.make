# Empty compiler generated dependencies file for characterize_model.
# This may be replaced when dependencies are built.
