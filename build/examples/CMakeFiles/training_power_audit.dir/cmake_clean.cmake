file(REMOVE_RECURSE
  "CMakeFiles/training_power_audit.dir/training_power_audit.cpp.o"
  "CMakeFiles/training_power_audit.dir/training_power_audit.cpp.o.d"
  "training_power_audit"
  "training_power_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/training_power_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
