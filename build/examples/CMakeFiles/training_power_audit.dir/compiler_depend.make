# Empty compiler generated dependencies file for training_power_audit.
# This may be replaced when dependencies are built.
