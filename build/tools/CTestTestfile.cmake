# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(polcactl_models "/root/repo/build/tools/polcactl" "models")
set_tests_properties(polcactl_models PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(polcactl_policy "/root/repo/build/tools/polcactl" "policy" "polca")
set_tests_properties(polcactl_policy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(polcactl_trace_roundtrip "/usr/bin/cmake" "-DPOLCACTL=/root/repo/build/tools/polcactl" "-DWORK_DIR=/root/repo/build/tools" "-P" "/root/repo/tools/trace_roundtrip_test.cmake")
set_tests_properties(polcactl_trace_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(polcactl_run_smoke "/root/repo/build/tools/polcactl" "run" "--added" "0.2" "--days" "0.02" "--servers" "10")
set_tests_properties(polcactl_run_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
