file(REMOVE_RECURSE
  "CMakeFiles/polcactl.dir/polcactl.cc.o"
  "CMakeFiles/polcactl.dir/polcactl.cc.o.d"
  "polcactl"
  "polcactl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polcactl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
