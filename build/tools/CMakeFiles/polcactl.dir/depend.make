# Empty dependencies file for polcactl.
# This may be replaced when dependencies are built.
