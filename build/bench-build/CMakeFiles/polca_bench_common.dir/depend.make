# Empty dependencies file for polca_bench_common.
# This may be replaced when dependencies are built.
