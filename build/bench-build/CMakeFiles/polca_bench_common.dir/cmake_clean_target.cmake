file(REMOVE_RECURSE
  "libpolca_bench_common.a"
)
