file(REMOVE_RECURSE
  "CMakeFiles/polca_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/polca_bench_common.dir/bench_common.cc.o.d"
  "libpolca_bench_common.a"
  "libpolca_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polca_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
