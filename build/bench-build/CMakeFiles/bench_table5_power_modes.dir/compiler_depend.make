# Empty compiler generated dependencies file for bench_table5_power_modes.
# This may be replaced when dependencies are built.
