file(REMOVE_RECURSE
  "../bench/bench_table5_power_modes"
  "../bench/bench_table5_power_modes.pdb"
  "CMakeFiles/bench_table5_power_modes.dir/bench_table5_power_modes.cc.o"
  "CMakeFiles/bench_table5_power_modes.dir/bench_table5_power_modes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_power_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
