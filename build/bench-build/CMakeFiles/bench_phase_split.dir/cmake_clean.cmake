file(REMOVE_RECURSE
  "../bench/bench_phase_split"
  "../bench/bench_phase_split.pdb"
  "CMakeFiles/bench_phase_split.dir/bench_phase_split.cc.o"
  "CMakeFiles/bench_phase_split.dir/bench_phase_split.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_phase_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
