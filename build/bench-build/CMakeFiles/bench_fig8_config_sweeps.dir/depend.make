# Empty dependencies file for bench_fig8_config_sweeps.
# This may be replaced when dependencies are built.
