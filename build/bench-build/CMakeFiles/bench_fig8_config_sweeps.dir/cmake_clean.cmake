file(REMOVE_RECURSE
  "../bench/bench_fig8_config_sweeps"
  "../bench/bench_fig8_config_sweeps.pdb"
  "CMakeFiles/bench_fig8_config_sweeps.dir/bench_fig8_config_sweeps.cc.o"
  "CMakeFiles/bench_fig8_config_sweeps.dir/bench_fig8_config_sweeps.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_config_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
