# Empty dependencies file for bench_fig15_parameter_sweeps.
# This may be replaced when dependencies are built.
