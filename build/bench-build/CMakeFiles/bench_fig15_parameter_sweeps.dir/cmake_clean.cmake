file(REMOVE_RECURSE
  "../bench/bench_fig15_parameter_sweeps"
  "../bench/bench_fig15_parameter_sweeps.pdb"
  "CMakeFiles/bench_fig15_parameter_sweeps.dir/bench_fig15_parameter_sweeps.cc.o"
  "CMakeFiles/bench_fig15_parameter_sweeps.dir/bench_fig15_parameter_sweeps.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_parameter_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
