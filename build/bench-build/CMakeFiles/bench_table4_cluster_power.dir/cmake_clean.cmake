file(REMOVE_RECURSE
  "../bench/bench_table4_cluster_power"
  "../bench/bench_table4_cluster_power.pdb"
  "CMakeFiles/bench_table4_cluster_power.dir/bench_table4_cluster_power.cc.o"
  "CMakeFiles/bench_table4_cluster_power.dir/bench_table4_cluster_power.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_cluster_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
