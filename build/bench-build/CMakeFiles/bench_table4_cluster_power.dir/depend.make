# Empty dependencies file for bench_table4_cluster_power.
# This may be replaced when dependencies are built.
