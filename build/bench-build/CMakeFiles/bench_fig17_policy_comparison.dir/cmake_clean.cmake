file(REMOVE_RECURSE
  "../bench/bench_fig17_policy_comparison"
  "../bench/bench_fig17_policy_comparison.pdb"
  "CMakeFiles/bench_fig17_policy_comparison.dir/bench_fig17_policy_comparison.cc.o"
  "CMakeFiles/bench_fig17_policy_comparison.dir/bench_fig17_policy_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_policy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
