# Empty compiler generated dependencies file for bench_fig17_policy_comparison.
# This may be replaced when dependencies are built.
