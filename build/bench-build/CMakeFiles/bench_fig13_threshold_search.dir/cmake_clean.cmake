file(REMOVE_RECURSE
  "../bench/bench_fig13_threshold_search"
  "../bench/bench_fig13_threshold_search.pdb"
  "CMakeFiles/bench_fig13_threshold_search.dir/bench_fig13_threshold_search.cc.o"
  "CMakeFiles/bench_fig13_threshold_search.dir/bench_fig13_threshold_search.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_threshold_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
