# Empty compiler generated dependencies file for bench_fig13_threshold_search.
# This may be replaced when dependencies are built.
