# Empty dependencies file for bench_fig4_training_timeseries.
# This may be replaced when dependencies are built.
