file(REMOVE_RECURSE
  "../bench/bench_trace_fidelity"
  "../bench/bench_trace_fidelity.pdb"
  "CMakeFiles/bench_trace_fidelity.dir/bench_trace_fidelity.cc.o"
  "CMakeFiles/bench_trace_fidelity.dir/bench_trace_fidelity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
