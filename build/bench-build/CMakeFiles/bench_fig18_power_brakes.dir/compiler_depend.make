# Empty compiler generated dependencies file for bench_fig18_power_brakes.
# This may be replaced when dependencies are built.
