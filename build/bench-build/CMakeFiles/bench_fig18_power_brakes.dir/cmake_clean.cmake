file(REMOVE_RECURSE
  "../bench/bench_fig18_power_brakes"
  "../bench/bench_fig18_power_brakes.pdb"
  "CMakeFiles/bench_fig18_power_brakes.dir/bench_fig18_power_brakes.cc.o"
  "CMakeFiles/bench_fig18_power_brakes.dir/bench_fig18_power_brakes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_power_brakes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
