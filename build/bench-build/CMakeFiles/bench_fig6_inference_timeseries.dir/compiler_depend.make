# Empty compiler generated dependencies file for bench_fig6_inference_timeseries.
# This may be replaced when dependencies are built.
