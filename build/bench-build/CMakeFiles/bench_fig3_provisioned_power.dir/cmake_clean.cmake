file(REMOVE_RECURSE
  "../bench/bench_fig3_provisioned_power"
  "../bench/bench_fig3_provisioned_power.pdb"
  "CMakeFiles/bench_fig3_provisioned_power.dir/bench_fig3_provisioned_power.cc.o"
  "CMakeFiles/bench_fig3_provisioned_power.dir/bench_fig3_provisioned_power.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_provisioned_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
