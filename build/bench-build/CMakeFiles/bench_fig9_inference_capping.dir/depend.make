# Empty dependencies file for bench_fig9_inference_capping.
# This may be replaced when dependencies are built.
