file(REMOVE_RECURSE
  "../bench/bench_table2_row_params"
  "../bench/bench_table2_row_params.pdb"
  "CMakeFiles/bench_table2_row_params.dir/bench_table2_row_params.cc.o"
  "CMakeFiles/bench_table2_row_params.dir/bench_table2_row_params.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_row_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
