file(REMOVE_RECURSE
  "../bench/bench_datatypes"
  "../bench/bench_datatypes.pdb"
  "CMakeFiles/bench_datatypes.dir/bench_datatypes.cc.o"
  "CMakeFiles/bench_datatypes.dir/bench_datatypes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_datatypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
