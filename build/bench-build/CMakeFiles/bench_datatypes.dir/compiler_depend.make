# Empty compiler generated dependencies file for bench_datatypes.
# This may be replaced when dependencies are built.
