# Empty dependencies file for bench_table6_workloads.
# This may be replaced when dependencies are built.
