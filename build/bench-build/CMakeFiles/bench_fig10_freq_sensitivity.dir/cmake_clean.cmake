file(REMOVE_RECURSE
  "../bench/bench_fig10_freq_sensitivity"
  "../bench/bench_fig10_freq_sensitivity.pdb"
  "CMakeFiles/bench_fig10_freq_sensitivity.dir/bench_fig10_freq_sensitivity.cc.o"
  "CMakeFiles/bench_fig10_freq_sensitivity.dir/bench_fig10_freq_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_freq_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
