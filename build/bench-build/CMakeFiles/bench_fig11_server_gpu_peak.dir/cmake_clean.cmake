file(REMOVE_RECURSE
  "../bench/bench_fig11_server_gpu_peak"
  "../bench/bench_fig11_server_gpu_peak.pdb"
  "CMakeFiles/bench_fig11_server_gpu_peak.dir/bench_fig11_server_gpu_peak.cc.o"
  "CMakeFiles/bench_fig11_server_gpu_peak.dir/bench_fig11_server_gpu_peak.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_server_gpu_peak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
