# Empty compiler generated dependencies file for bench_fig11_server_gpu_peak.
# This may be replaced when dependencies are built.
