file(REMOVE_RECURSE
  "../bench/bench_fig5_training_capping"
  "../bench/bench_fig5_training_capping.pdb"
  "CMakeFiles/bench_fig5_training_capping.dir/bench_fig5_training_capping.cc.o"
  "CMakeFiles/bench_fig5_training_capping.dir/bench_fig5_training_capping.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_training_capping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
