# Empty dependencies file for bench_fig16_power_timeline.
# This may be replaced when dependencies are built.
