file(REMOVE_RECURSE
  "../bench/bench_fig16_power_timeline"
  "../bench/bench_fig16_power_timeline.pdb"
  "CMakeFiles/bench_fig16_power_timeline.dir/bench_fig16_power_timeline.cc.o"
  "CMakeFiles/bench_fig16_power_timeline.dir/bench_fig16_power_timeline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_power_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
