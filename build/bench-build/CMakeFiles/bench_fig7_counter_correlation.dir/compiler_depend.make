# Empty compiler generated dependencies file for bench_fig7_counter_correlation.
# This may be replaced when dependencies are built.
