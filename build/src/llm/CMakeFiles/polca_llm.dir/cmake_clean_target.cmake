file(REMOVE_RECURSE
  "libpolca_llm.a"
)
