
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/llm/counters.cc" "src/llm/CMakeFiles/polca_llm.dir/counters.cc.o" "gcc" "src/llm/CMakeFiles/polca_llm.dir/counters.cc.o.d"
  "/root/repo/src/llm/executor.cc" "src/llm/CMakeFiles/polca_llm.dir/executor.cc.o" "gcc" "src/llm/CMakeFiles/polca_llm.dir/executor.cc.o.d"
  "/root/repo/src/llm/model_spec.cc" "src/llm/CMakeFiles/polca_llm.dir/model_spec.cc.o" "gcc" "src/llm/CMakeFiles/polca_llm.dir/model_spec.cc.o.d"
  "/root/repo/src/llm/phase_model.cc" "src/llm/CMakeFiles/polca_llm.dir/phase_model.cc.o" "gcc" "src/llm/CMakeFiles/polca_llm.dir/phase_model.cc.o.d"
  "/root/repo/src/llm/segments.cc" "src/llm/CMakeFiles/polca_llm.dir/segments.cc.o" "gcc" "src/llm/CMakeFiles/polca_llm.dir/segments.cc.o.d"
  "/root/repo/src/llm/training_model.cc" "src/llm/CMakeFiles/polca_llm.dir/training_model.cc.o" "gcc" "src/llm/CMakeFiles/polca_llm.dir/training_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/polca_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/polca_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
