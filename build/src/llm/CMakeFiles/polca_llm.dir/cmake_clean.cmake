file(REMOVE_RECURSE
  "CMakeFiles/polca_llm.dir/counters.cc.o"
  "CMakeFiles/polca_llm.dir/counters.cc.o.d"
  "CMakeFiles/polca_llm.dir/executor.cc.o"
  "CMakeFiles/polca_llm.dir/executor.cc.o.d"
  "CMakeFiles/polca_llm.dir/model_spec.cc.o"
  "CMakeFiles/polca_llm.dir/model_spec.cc.o.d"
  "CMakeFiles/polca_llm.dir/phase_model.cc.o"
  "CMakeFiles/polca_llm.dir/phase_model.cc.o.d"
  "CMakeFiles/polca_llm.dir/segments.cc.o"
  "CMakeFiles/polca_llm.dir/segments.cc.o.d"
  "CMakeFiles/polca_llm.dir/training_model.cc.o"
  "CMakeFiles/polca_llm.dir/training_model.cc.o.d"
  "libpolca_llm.a"
  "libpolca_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polca_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
