# Empty dependencies file for polca_llm.
# This may be replaced when dependencies are built.
