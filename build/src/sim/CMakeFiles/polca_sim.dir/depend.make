# Empty dependencies file for polca_sim.
# This may be replaced when dependencies are built.
