file(REMOVE_RECURSE
  "CMakeFiles/polca_sim.dir/event_queue.cc.o"
  "CMakeFiles/polca_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/polca_sim.dir/logging.cc.o"
  "CMakeFiles/polca_sim.dir/logging.cc.o.d"
  "CMakeFiles/polca_sim.dir/random.cc.o"
  "CMakeFiles/polca_sim.dir/random.cc.o.d"
  "CMakeFiles/polca_sim.dir/simulation.cc.o"
  "CMakeFiles/polca_sim.dir/simulation.cc.o.d"
  "CMakeFiles/polca_sim.dir/stats.cc.o"
  "CMakeFiles/polca_sim.dir/stats.cc.o.d"
  "CMakeFiles/polca_sim.dir/timeseries.cc.o"
  "CMakeFiles/polca_sim.dir/timeseries.cc.o.d"
  "libpolca_sim.a"
  "libpolca_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polca_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
