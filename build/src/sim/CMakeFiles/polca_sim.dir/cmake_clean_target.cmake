file(REMOVE_RECURSE
  "libpolca_sim.a"
)
