
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/energy_meter.cc" "src/telemetry/CMakeFiles/polca_telemetry.dir/energy_meter.cc.o" "gcc" "src/telemetry/CMakeFiles/polca_telemetry.dir/energy_meter.cc.o.d"
  "/root/repo/src/telemetry/interface_registry.cc" "src/telemetry/CMakeFiles/polca_telemetry.dir/interface_registry.cc.o" "gcc" "src/telemetry/CMakeFiles/polca_telemetry.dir/interface_registry.cc.o.d"
  "/root/repo/src/telemetry/monitors.cc" "src/telemetry/CMakeFiles/polca_telemetry.dir/monitors.cc.o" "gcc" "src/telemetry/CMakeFiles/polca_telemetry.dir/monitors.cc.o.d"
  "/root/repo/src/telemetry/row_manager.cc" "src/telemetry/CMakeFiles/polca_telemetry.dir/row_manager.cc.o" "gcc" "src/telemetry/CMakeFiles/polca_telemetry.dir/row_manager.cc.o.d"
  "/root/repo/src/telemetry/smbpbi.cc" "src/telemetry/CMakeFiles/polca_telemetry.dir/smbpbi.cc.o" "gcc" "src/telemetry/CMakeFiles/polca_telemetry.dir/smbpbi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/polca_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/polca_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
