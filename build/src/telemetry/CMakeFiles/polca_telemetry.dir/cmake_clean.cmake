file(REMOVE_RECURSE
  "CMakeFiles/polca_telemetry.dir/energy_meter.cc.o"
  "CMakeFiles/polca_telemetry.dir/energy_meter.cc.o.d"
  "CMakeFiles/polca_telemetry.dir/interface_registry.cc.o"
  "CMakeFiles/polca_telemetry.dir/interface_registry.cc.o.d"
  "CMakeFiles/polca_telemetry.dir/monitors.cc.o"
  "CMakeFiles/polca_telemetry.dir/monitors.cc.o.d"
  "CMakeFiles/polca_telemetry.dir/row_manager.cc.o"
  "CMakeFiles/polca_telemetry.dir/row_manager.cc.o.d"
  "CMakeFiles/polca_telemetry.dir/smbpbi.cc.o"
  "CMakeFiles/polca_telemetry.dir/smbpbi.cc.o.d"
  "libpolca_telemetry.a"
  "libpolca_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polca_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
