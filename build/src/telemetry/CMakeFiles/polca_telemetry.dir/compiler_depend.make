# Empty compiler generated dependencies file for polca_telemetry.
# This may be replaced when dependencies are built.
