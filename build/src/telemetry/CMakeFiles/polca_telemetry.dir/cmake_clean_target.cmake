file(REMOVE_RECURSE
  "libpolca_telemetry.a"
)
