# Empty dependencies file for polca_analysis.
# This may be replaced when dependencies are built.
