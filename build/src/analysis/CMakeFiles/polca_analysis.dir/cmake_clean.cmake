file(REMOVE_RECURSE
  "CMakeFiles/polca_analysis.dir/ascii_chart.cc.o"
  "CMakeFiles/polca_analysis.dir/ascii_chart.cc.o.d"
  "CMakeFiles/polca_analysis.dir/correlation.cc.o"
  "CMakeFiles/polca_analysis.dir/correlation.cc.o.d"
  "CMakeFiles/polca_analysis.dir/csv.cc.o"
  "CMakeFiles/polca_analysis.dir/csv.cc.o.d"
  "CMakeFiles/polca_analysis.dir/error_metrics.cc.o"
  "CMakeFiles/polca_analysis.dir/error_metrics.cc.o.d"
  "CMakeFiles/polca_analysis.dir/table.cc.o"
  "CMakeFiles/polca_analysis.dir/table.cc.o.d"
  "libpolca_analysis.a"
  "libpolca_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polca_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
