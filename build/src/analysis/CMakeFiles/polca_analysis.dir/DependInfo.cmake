
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/ascii_chart.cc" "src/analysis/CMakeFiles/polca_analysis.dir/ascii_chart.cc.o" "gcc" "src/analysis/CMakeFiles/polca_analysis.dir/ascii_chart.cc.o.d"
  "/root/repo/src/analysis/correlation.cc" "src/analysis/CMakeFiles/polca_analysis.dir/correlation.cc.o" "gcc" "src/analysis/CMakeFiles/polca_analysis.dir/correlation.cc.o.d"
  "/root/repo/src/analysis/csv.cc" "src/analysis/CMakeFiles/polca_analysis.dir/csv.cc.o" "gcc" "src/analysis/CMakeFiles/polca_analysis.dir/csv.cc.o.d"
  "/root/repo/src/analysis/error_metrics.cc" "src/analysis/CMakeFiles/polca_analysis.dir/error_metrics.cc.o" "gcc" "src/analysis/CMakeFiles/polca_analysis.dir/error_metrics.cc.o.d"
  "/root/repo/src/analysis/table.cc" "src/analysis/CMakeFiles/polca_analysis.dir/table.cc.o" "gcc" "src/analysis/CMakeFiles/polca_analysis.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/polca_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
