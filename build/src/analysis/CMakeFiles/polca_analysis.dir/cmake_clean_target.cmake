file(REMOVE_RECURSE
  "libpolca_analysis.a"
)
