# Empty dependencies file for polca_power.
# This may be replaced when dependencies are built.
