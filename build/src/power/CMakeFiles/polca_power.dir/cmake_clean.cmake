file(REMOVE_RECURSE
  "CMakeFiles/polca_power.dir/gpu_power_model.cc.o"
  "CMakeFiles/polca_power.dir/gpu_power_model.cc.o.d"
  "CMakeFiles/polca_power.dir/gpu_spec.cc.o"
  "CMakeFiles/polca_power.dir/gpu_spec.cc.o.d"
  "CMakeFiles/polca_power.dir/server_model.cc.o"
  "CMakeFiles/polca_power.dir/server_model.cc.o.d"
  "libpolca_power.a"
  "libpolca_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polca_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
