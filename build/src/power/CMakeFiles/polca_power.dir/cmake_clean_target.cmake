file(REMOVE_RECURSE
  "libpolca_power.a"
)
