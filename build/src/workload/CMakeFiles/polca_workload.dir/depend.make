# Empty dependencies file for polca_workload.
# This may be replaced when dependencies are built.
