
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/diurnal.cc" "src/workload/CMakeFiles/polca_workload.dir/diurnal.cc.o" "gcc" "src/workload/CMakeFiles/polca_workload.dir/diurnal.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/polca_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/polca_workload.dir/trace.cc.o.d"
  "/root/repo/src/workload/trace_gen.cc" "src/workload/CMakeFiles/polca_workload.dir/trace_gen.cc.o" "gcc" "src/workload/CMakeFiles/polca_workload.dir/trace_gen.cc.o.d"
  "/root/repo/src/workload/workload_spec.cc" "src/workload/CMakeFiles/polca_workload.dir/workload_spec.cc.o" "gcc" "src/workload/CMakeFiles/polca_workload.dir/workload_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/llm/CMakeFiles/polca_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/polca_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/polca_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
