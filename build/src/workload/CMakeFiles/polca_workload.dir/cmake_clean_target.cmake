file(REMOVE_RECURSE
  "libpolca_workload.a"
)
