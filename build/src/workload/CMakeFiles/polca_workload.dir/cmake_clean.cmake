file(REMOVE_RECURSE
  "CMakeFiles/polca_workload.dir/diurnal.cc.o"
  "CMakeFiles/polca_workload.dir/diurnal.cc.o.d"
  "CMakeFiles/polca_workload.dir/trace.cc.o"
  "CMakeFiles/polca_workload.dir/trace.cc.o.d"
  "CMakeFiles/polca_workload.dir/trace_gen.cc.o"
  "CMakeFiles/polca_workload.dir/trace_gen.cc.o.d"
  "CMakeFiles/polca_workload.dir/workload_spec.cc.o"
  "CMakeFiles/polca_workload.dir/workload_spec.cc.o.d"
  "libpolca_workload.a"
  "libpolca_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polca_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
