file(REMOVE_RECURSE
  "CMakeFiles/polca_core.dir/oversub_experiment.cc.o"
  "CMakeFiles/polca_core.dir/oversub_experiment.cc.o.d"
  "CMakeFiles/polca_core.dir/policy.cc.o"
  "CMakeFiles/polca_core.dir/policy.cc.o.d"
  "CMakeFiles/polca_core.dir/power_manager.cc.o"
  "CMakeFiles/polca_core.dir/power_manager.cc.o.d"
  "CMakeFiles/polca_core.dir/workload_aware.cc.o"
  "CMakeFiles/polca_core.dir/workload_aware.cc.o.d"
  "libpolca_core.a"
  "libpolca_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polca_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
