file(REMOVE_RECURSE
  "libpolca_core.a"
)
