# Empty dependencies file for polca_core.
# This may be replaced when dependencies are built.
