file(REMOVE_RECURSE
  "libpolca_cluster.a"
)
