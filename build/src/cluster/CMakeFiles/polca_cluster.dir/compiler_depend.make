# Empty compiler generated dependencies file for polca_cluster.
# This may be replaced when dependencies are built.
