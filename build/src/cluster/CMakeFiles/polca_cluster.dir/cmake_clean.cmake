file(REMOVE_RECURSE
  "CMakeFiles/polca_cluster.dir/allocator.cc.o"
  "CMakeFiles/polca_cluster.dir/allocator.cc.o.d"
  "CMakeFiles/polca_cluster.dir/datacenter.cc.o"
  "CMakeFiles/polca_cluster.dir/datacenter.cc.o.d"
  "CMakeFiles/polca_cluster.dir/dispatcher.cc.o"
  "CMakeFiles/polca_cluster.dir/dispatcher.cc.o.d"
  "CMakeFiles/polca_cluster.dir/inference_server.cc.o"
  "CMakeFiles/polca_cluster.dir/inference_server.cc.o.d"
  "CMakeFiles/polca_cluster.dir/phase_split.cc.o"
  "CMakeFiles/polca_cluster.dir/phase_split.cc.o.d"
  "CMakeFiles/polca_cluster.dir/row.cc.o"
  "CMakeFiles/polca_cluster.dir/row.cc.o.d"
  "CMakeFiles/polca_cluster.dir/training_cluster.cc.o"
  "CMakeFiles/polca_cluster.dir/training_cluster.cc.o.d"
  "libpolca_cluster.a"
  "libpolca_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polca_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
