
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/allocator.cc" "src/cluster/CMakeFiles/polca_cluster.dir/allocator.cc.o" "gcc" "src/cluster/CMakeFiles/polca_cluster.dir/allocator.cc.o.d"
  "/root/repo/src/cluster/datacenter.cc" "src/cluster/CMakeFiles/polca_cluster.dir/datacenter.cc.o" "gcc" "src/cluster/CMakeFiles/polca_cluster.dir/datacenter.cc.o.d"
  "/root/repo/src/cluster/dispatcher.cc" "src/cluster/CMakeFiles/polca_cluster.dir/dispatcher.cc.o" "gcc" "src/cluster/CMakeFiles/polca_cluster.dir/dispatcher.cc.o.d"
  "/root/repo/src/cluster/inference_server.cc" "src/cluster/CMakeFiles/polca_cluster.dir/inference_server.cc.o" "gcc" "src/cluster/CMakeFiles/polca_cluster.dir/inference_server.cc.o.d"
  "/root/repo/src/cluster/phase_split.cc" "src/cluster/CMakeFiles/polca_cluster.dir/phase_split.cc.o" "gcc" "src/cluster/CMakeFiles/polca_cluster.dir/phase_split.cc.o.d"
  "/root/repo/src/cluster/row.cc" "src/cluster/CMakeFiles/polca_cluster.dir/row.cc.o" "gcc" "src/cluster/CMakeFiles/polca_cluster.dir/row.cc.o.d"
  "/root/repo/src/cluster/training_cluster.cc" "src/cluster/CMakeFiles/polca_cluster.dir/training_cluster.cc.o" "gcc" "src/cluster/CMakeFiles/polca_cluster.dir/training_cluster.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/llm/CMakeFiles/polca_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/polca_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/polca_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/polca_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/polca_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
