# Empty dependencies file for test_workload_aware.
# This may be replaced when dependencies are built.
