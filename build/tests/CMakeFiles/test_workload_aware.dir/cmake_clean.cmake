file(REMOVE_RECURSE
  "CMakeFiles/test_workload_aware.dir/test_workload_aware.cc.o"
  "CMakeFiles/test_workload_aware.dir/test_workload_aware.cc.o.d"
  "test_workload_aware"
  "test_workload_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
