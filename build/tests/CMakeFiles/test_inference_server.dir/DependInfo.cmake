
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_inference_server.cc" "tests/CMakeFiles/test_inference_server.dir/test_inference_server.cc.o" "gcc" "tests/CMakeFiles/test_inference_server.dir/test_inference_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/polca_test_main.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/polca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/polca_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/polca_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/polca_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/polca_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/polca_power.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/polca_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/polca_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
