# Empty compiler generated dependencies file for test_inference_server.
# This may be replaced when dependencies are built.
