file(REMOVE_RECURSE
  "CMakeFiles/test_inference_server.dir/test_inference_server.cc.o"
  "CMakeFiles/test_inference_server.dir/test_inference_server.cc.o.d"
  "test_inference_server"
  "test_inference_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inference_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
