# Empty compiler generated dependencies file for test_oversub_experiment.
# This may be replaced when dependencies are built.
