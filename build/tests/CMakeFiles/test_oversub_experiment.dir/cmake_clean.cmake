file(REMOVE_RECURSE
  "CMakeFiles/test_oversub_experiment.dir/test_oversub_experiment.cc.o"
  "CMakeFiles/test_oversub_experiment.dir/test_oversub_experiment.cc.o.d"
  "test_oversub_experiment"
  "test_oversub_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oversub_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
