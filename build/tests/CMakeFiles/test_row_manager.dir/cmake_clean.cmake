file(REMOVE_RECURSE
  "CMakeFiles/test_row_manager.dir/test_row_manager.cc.o"
  "CMakeFiles/test_row_manager.dir/test_row_manager.cc.o.d"
  "test_row_manager"
  "test_row_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_row_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
