# Empty compiler generated dependencies file for test_row_manager.
# This may be replaced when dependencies are built.
