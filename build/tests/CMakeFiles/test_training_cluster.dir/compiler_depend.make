# Empty compiler generated dependencies file for test_training_cluster.
# This may be replaced when dependencies are built.
