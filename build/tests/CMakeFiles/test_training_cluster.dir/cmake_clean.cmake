file(REMOVE_RECURSE
  "CMakeFiles/test_training_cluster.dir/test_training_cluster.cc.o"
  "CMakeFiles/test_training_cluster.dir/test_training_cluster.cc.o.d"
  "test_training_cluster"
  "test_training_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_training_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
