file(REMOVE_RECURSE
  "CMakeFiles/polca_test_main.dir/polca_test_main.cc.o"
  "CMakeFiles/polca_test_main.dir/polca_test_main.cc.o.d"
  "libpolca_test_main.a"
  "libpolca_test_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polca_test_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
