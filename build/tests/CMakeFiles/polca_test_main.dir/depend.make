# Empty dependencies file for polca_test_main.
# This may be replaced when dependencies are built.
