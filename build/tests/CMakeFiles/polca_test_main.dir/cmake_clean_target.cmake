file(REMOVE_RECURSE
  "libpolca_test_main.a"
)
