file(REMOVE_RECURSE
  "CMakeFiles/test_trace_gen.dir/test_trace_gen.cc.o"
  "CMakeFiles/test_trace_gen.dir/test_trace_gen.cc.o.d"
  "test_trace_gen"
  "test_trace_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
