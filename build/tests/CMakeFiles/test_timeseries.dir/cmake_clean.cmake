file(REMOVE_RECURSE
  "CMakeFiles/test_timeseries.dir/test_timeseries.cc.o"
  "CMakeFiles/test_timeseries.dir/test_timeseries.cc.o.d"
  "test_timeseries"
  "test_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
