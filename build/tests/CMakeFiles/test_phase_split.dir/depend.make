# Empty dependencies file for test_phase_split.
# This may be replaced when dependencies are built.
