file(REMOVE_RECURSE
  "CMakeFiles/test_phase_split.dir/test_phase_split.cc.o"
  "CMakeFiles/test_phase_split.dir/test_phase_split.cc.o.d"
  "test_phase_split"
  "test_phase_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phase_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
