file(REMOVE_RECURSE
  "CMakeFiles/test_monitors.dir/test_monitors.cc.o"
  "CMakeFiles/test_monitors.dir/test_monitors.cc.o.d"
  "test_monitors"
  "test_monitors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monitors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
