file(REMOVE_RECURSE
  "CMakeFiles/test_training_model.dir/test_training_model.cc.o"
  "CMakeFiles/test_training_model.dir/test_training_model.cc.o.d"
  "test_training_model"
  "test_training_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_training_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
