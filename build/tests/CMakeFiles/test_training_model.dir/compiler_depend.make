# Empty compiler generated dependencies file for test_training_model.
# This may be replaced when dependencies are built.
