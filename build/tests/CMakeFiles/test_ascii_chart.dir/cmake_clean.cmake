file(REMOVE_RECURSE
  "CMakeFiles/test_ascii_chart.dir/test_ascii_chart.cc.o"
  "CMakeFiles/test_ascii_chart.dir/test_ascii_chart.cc.o.d"
  "test_ascii_chart"
  "test_ascii_chart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ascii_chart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
