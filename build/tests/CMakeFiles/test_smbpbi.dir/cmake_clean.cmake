file(REMOVE_RECURSE
  "CMakeFiles/test_smbpbi.dir/test_smbpbi.cc.o"
  "CMakeFiles/test_smbpbi.dir/test_smbpbi.cc.o.d"
  "test_smbpbi"
  "test_smbpbi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smbpbi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
