# Empty dependencies file for test_smbpbi.
# This may be replaced when dependencies are built.
