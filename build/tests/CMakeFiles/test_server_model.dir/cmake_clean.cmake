file(REMOVE_RECURSE
  "CMakeFiles/test_server_model.dir/test_server_model.cc.o"
  "CMakeFiles/test_server_model.dir/test_server_model.cc.o.d"
  "test_server_model"
  "test_server_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_server_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
