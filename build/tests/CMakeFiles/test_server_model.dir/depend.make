# Empty dependencies file for test_server_model.
# This may be replaced when dependencies are built.
