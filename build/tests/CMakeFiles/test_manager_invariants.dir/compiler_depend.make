# Empty compiler generated dependencies file for test_manager_invariants.
# This may be replaced when dependencies are built.
