file(REMOVE_RECURSE
  "CMakeFiles/test_manager_invariants.dir/test_manager_invariants.cc.o"
  "CMakeFiles/test_manager_invariants.dir/test_manager_invariants.cc.o.d"
  "test_manager_invariants"
  "test_manager_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_manager_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
